module Allocation = Cdbs_core.Allocation
module Query_class = Cdbs_core.Query_class
module Fragment = Cdbs_core.Fragment
module Planner = Cdbs_migration.Planner
module Schedule = Cdbs_migration.Schedule
module Delta = Cdbs_migration.Delta
module Heap = Cdbs_util.Heap
module Tel = Cdbs_telemetry

type config = {
  cost : Cost_model.params;
  speeds : float array;
  protocol : Protocol.t;
}

let homogeneous_config ?(cost = Cost_model.default)
    ?(protocol = Protocol.default) n =
  if n <= 0 then invalid_arg "Simulator.homogeneous_config";
  { cost; speeds = Array.make n 1.; protocol }

type outcome = {
  completed : int;
  makespan : float;
  throughput : float;
  avg_response : float;
  max_response : float;
  p50_response : float;
  p95_response : float;
  p99_response : float;
  busy : float array;
  utilization : float array;
  errors : int;
}

(* (p50, p95, p99) of a response-time list; zeros when empty. *)
let percentiles_of = function
  | [] -> (0., 0., 0.)
  | rs ->
      let p q = Cdbs_util.Stats.percentile q rs in
      (p 50., p 95., p 99.)

let find_class alloc id =
  let classes = Allocation.classes alloc in
  let rec go i =
    if i >= Array.length classes then None
    else if classes.(i).Query_class.id = id then Some classes.(i)
    else go (i + 1)
  in
  go 0

let class_mb alloc (r : Request.t) =
  match r.Request.cost_mb with
  | Some mb -> mb
  | None -> (
      match find_class alloc r.Request.class_id with
      | Some c -> Query_class.size c
      | None -> 0.)

(* Open-mode runs trust arrival order; a caller handing over an unsorted
   list would silently simulate time running backwards (requests "arriving"
   before the clock reached them never queue).  Detect and stably sort
   instead. *)
let sorted_by_arrival requests =
  let rec is_sorted = function
    | (a : Request.t) :: (b :: _ as rest) ->
        a.Request.arrival <= b.Request.arrival && is_sorted rest
    | _ -> true
  in
  if is_sorted requests then requests
  else
    List.stable_sort
      (fun (a : Request.t) b -> Float.compare a.Request.arrival b.Request.arrival)
      requests

let run ~respect_arrivals config alloc requests =
  let n = Allocation.num_backends alloc in
  if Array.length config.speeds <> n then
    invalid_arg "Simulator.run: speeds length <> backend count";
  let requests =
    if respect_arrivals then sorted_by_arrival requests else requests
  in
  let sched = Scheduler.create alloc in
  let busy = Array.make n 0. in
  let completed = ref 0 and errors = ref 0 in
  let response_sum = ref 0. and response_max = ref 0. in
  let response_list = ref [] in
  let resident =
    Array.init n (fun b ->
        Cdbs_core.Fragment.set_size (Allocation.fragments_of alloc b))
  in
  List.iter
    (fun (r : Request.t) ->
      let now = if respect_arrivals then r.Request.arrival else 0. in
      match Scheduler.route sched ~now r with
      | Error _ -> incr errors
      | Ok targets ->
          let mb = class_mb alloc r in
          (* The protocol decides which replicas sit on the request's
             critical path; a read always has exactly one target. *)
          let split =
            if r.Request.is_update then
              Protocol.plan config.protocol ~targets
            else { Protocol.sync = targets; async = [] }
          in
          let replicas =
            if r.Request.is_update then List.length split.Protocol.sync else 1
          in
          let serve b ~factor =
            let service =
              factor
              *. Cost_model.service_time config.cost ~class_mb:mb
                   ~resident_mb:resident.(b) ~speed:config.speeds.(b)
                   ~is_update:r.Request.is_update ~replicas
            in
            let start = max now (Scheduler.free_at sched ~backend:b) in
            let finish = start +. service in
            Scheduler.book sched ~backend:b ~finish;
            busy.(b) <- busy.(b) +. service;
            finish
          in
          let finish_all = ref 0. in
          List.iter
            (fun b ->
              let finish = serve b ~factor:1. in
              if finish > !finish_all then finish_all := finish)
            split.Protocol.sync;
          (* Asynchronous replica application: occupies the queues but not
             the response. *)
          List.iter
            (fun (b, factor) -> ignore (serve b ~factor))
            split.Protocol.async;
          incr completed;
          let response = !finish_all -. now in
          response_sum := !response_sum +. response;
          response_list := response :: !response_list;
          if response > !response_max then response_max := response)
    requests;
  let p50, p95, p99 = percentiles_of !response_list in
  let makespan =
    let m = ref 0. in
    for b = 0 to n - 1 do
      if Scheduler.free_at sched ~backend:b > !m then
        m := Scheduler.free_at sched ~backend:b
    done;
    !m
  in
  {
    completed = !completed;
    makespan;
    throughput = (if makespan > 0. then float_of_int !completed /. makespan else 0.);
    avg_response =
      (if !completed > 0 then !response_sum /. float_of_int !completed else 0.);
    max_response = !response_max;
    p50_response = p50;
    p95_response = p95;
    p99_response = p99;
    busy;
    utilization =
      Array.map (fun b -> if makespan > 0. then b /. makespan else 0.) busy;
    errors = !errors;
  }

let run_batch config alloc requests =
  run ~respect_arrivals:false config alloc requests

let run_open config alloc requests =
  run ~respect_arrivals:true config alloc requests

(* ------------------------------------------------------------------ *)
(* Open-mode execution during a live migration                         *)
(* ------------------------------------------------------------------ *)

type migration_outcome = {
  run : outcome;
  copied_mb : float;
  replayed_mb : float;
  copy_done : float;
  drops_at : float;
  min_live_replicas : (string * int) list;
  target_deployed : bool;
  responses : (float * float) list;
}

(* Migration events in time order; at equal instants a copy opens before
   its own (zero-length) cutover, and the drop barrier comes last. *)
type mig_event =
  | Copy_start of Schedule.timed_move
  | Cutover of Schedule.timed_move
  | Drop_all

let run_open_with_migration ?(copy_slowdown = 0.25) ?telemetry ?monitor config
    ~target ~schedule requests =
  let plan = schedule.Schedule.plan in
  let n = plan.Planner.num_physical in
  if Array.length config.speeds <> n then
    invalid_arg
      "Simulator.run_open_with_migration: speeds length <> physical nodes";
  let telemetry =
    match (telemetry, monitor) with
    | None, Some _ -> Some (Tel.Sink.create ~capacity:64 ())
    | _ -> telemetry
  in
  let monitor_owns_attach =
    match (monitor, telemetry) with
    | Some m, Some sink -> Cdbs_analysis.Monitor.attach m sink
    | _ -> false
  in
  let requests = sorted_by_arrival requests in
  Tel.Sink.ev telemetry ~at:0. "run.start"
    [
      ("backends", Tel.Trace.Int n);
      ("offered", Tel.Trace.Int (List.length requests));
    ];
  let sched = Scheduler.create_dynamic target ~live:plan.Planner.old_sets in
  let delta : unit Delta.t = Delta.create () in
  let busy = Array.make n 0. in
  let completed = ref 0 and errors = ref 0 in
  let response_sum = ref 0. and response_max = ref 0. in
  let responses = ref [] in
  let replayed_mb = ref 0. in
  let classes = Array.to_list (Allocation.classes target) in
  let mins =
    List.map (fun c -> (c, ref (Scheduler.live_replicas sched c))) classes
  in
  (* Expand-then-contract promises each class never drops below the
     smaller of its old and target replica counts; announce the floor so
     the protocol monitor can hold the run to it. *)
  let target_replicas (c : Query_class.t) =
    Array.fold_left
      (fun acc set ->
        if Fragment.Set.subset c.Query_class.fragments set then acc + 1
        else acc)
      0 plan.Planner.target_sets
  in
  List.iter
    (fun ((c : Query_class.t), m) ->
      Tel.Sink.ev telemetry ~at:0. "migration.floor"
        [
          ("class", Tel.Trace.Str c.Query_class.id);
          ("floor", Tel.Trace.Int (min !m (target_replicas c)));
        ])
    mins;
  let observe_mins ~at () =
    List.iter
      (fun ((c : Query_class.t), m) ->
        let r = Scheduler.live_replicas sched c in
        Tel.Sink.ev telemetry ~at "migration.live"
          [
            ("class", Tel.Trace.Str c.Query_class.id);
            ("replicas", Tel.Trace.Int r);
          ];
        if r < !m then m := r)
      mins
  in
  let event_time = function
    | Copy_start tm -> tm.Schedule.start
    | Cutover tm -> tm.Schedule.finish
    | Drop_all -> schedule.Schedule.drops_at
  in
  let event_rank = function Copy_start _ -> 0 | Cutover _ -> 1 | Drop_all -> 2 in
  (* Pending migration events on a priority queue; the (time, rank,
     insertion) heap order matches the stable sort the list-based engine
     used, so the replay is unchanged. *)
  let events : mig_event Heap.t = Heap.create () in
  List.iter
    (fun e -> Heap.add events ~time:(event_time e) ~rank:(event_rank e) e)
    (Drop_all
    :: List.concat_map
         (fun tm -> [ Copy_start tm; Cutover tm ])
         schedule.Schedule.moves);
  let apply_event = function
    | Copy_start tm ->
        Delta.open_capture delta ~dest:tm.Schedule.move.Planner.dest
          ~fragment:tm.Schedule.move.Planner.fragment
    | Cutover tm ->
        let dest = tm.Schedule.move.Planner.dest in
        let fragment = tm.Schedule.move.Planner.fragment in
        let _, mb = Delta.drain delta ~dest ~fragment in
        (* Replay the captured deltas on the destination before the
           fragment goes live there: foreground work on its queue. *)
        if mb > 0. then begin
          let replay =
            mb *. config.cost.Cost_model.scan_seconds_per_mb
            /. config.speeds.(dest)
          in
          let start =
            max tm.Schedule.finish (Scheduler.free_at sched ~backend:dest)
          in
          Scheduler.book sched ~backend:dest ~finish:(start +. replay);
          busy.(dest) <- busy.(dest) +. replay;
          replayed_mb := !replayed_mb +. mb
        end;
        Scheduler.add_live sched ~backend:dest
          (Fragment.Set.singleton fragment)
    | Drop_all ->
        List.iter
          (fun (d : Planner.drop) ->
            Scheduler.remove_live sched ~backend:d.Planner.at_backend
              (Fragment.Set.singleton d.Planner.victim))
          plan.Planner.drops
  in
  let apply_events now =
    Heap.drain_until events ~time:now ~f:(fun at e ->
        apply_event e;
        observe_mins ~at ())
  in
  List.iter
    (fun (r : Request.t) ->
      let now = r.Request.arrival in
      apply_events now;
      match Scheduler.route sched ~now r with
      | Error _ -> incr errors
      | Ok targets ->
          let mb = class_mb target r in
          (* Updates arriving while a referenced fragment is on the wire
             go to the delta journal and are replayed at cutover. *)
          if r.Request.is_update then begin
            match find_class target r.Request.class_id with
            | Some c ->
                let frags = c.Query_class.fragments in
                let per_fragment =
                  mb /. float_of_int (max 1 (Fragment.Set.cardinal frags))
                in
                Fragment.Set.iter
                  (fun f ->
                    ignore
                      (Delta.capture delta ~fragment:f ~item:()
                         ~mb:per_fragment))
                  frags
            | None -> ()
          end;
          let split =
            if r.Request.is_update then Protocol.plan config.protocol ~targets
            else { Protocol.sync = targets; async = [] }
          in
          let replicas =
            if r.Request.is_update then List.length split.Protocol.sync else 1
          in
          let serve b ~factor =
            (* Background copy I/O contends with foreground work on the
               nodes it touches. *)
            let contention =
              if Schedule.copying schedule ~backend:b ~at:now then
                1. +. copy_slowdown
              else 1.
            in
            let service =
              factor *. contention
              *. Cost_model.service_time config.cost ~class_mb:mb
                   ~resident_mb:
                     (Fragment.set_size
                        (Scheduler.live_fragments sched ~backend:b))
                   ~speed:config.speeds.(b) ~is_update:r.Request.is_update
                   ~replicas
            in
            let start = max now (Scheduler.free_at sched ~backend:b) in
            let finish = start +. service in
            Scheduler.book sched ~backend:b ~finish;
            busy.(b) <- busy.(b) +. service;
            finish
          in
          let finish_all = ref 0. in
          List.iter
            (fun b ->
              let finish = serve b ~factor:1. in
              if finish > !finish_all then finish_all := finish)
            split.Protocol.sync;
          List.iter
            (fun (b, factor) -> ignore (serve b ~factor))
            split.Protocol.async;
          incr completed;
          let response = !finish_all -. now in
          response_sum := !response_sum +. response;
          if response > !response_max then response_max := response;
          responses := (now, response) :: !responses)
    requests;
  (* Requests may dry up before the rebalance completes: finish it. *)
  apply_events infinity;
  let makespan =
    let m = ref 0. in
    for b = 0 to n - 1 do
      if Scheduler.free_at sched ~backend:b > !m then
        m := Scheduler.free_at sched ~backend:b
    done;
    !m
  in
  let target_deployed =
    let ok = ref true in
    for b = 0 to n - 1 do
      if
        not
          (Fragment.Set.equal
             (Scheduler.live_fragments sched ~backend:b)
             plan.Planner.target_sets.(b))
      then ok := false
    done;
    !ok
  in
  let p50, p95, p99 = percentiles_of (List.map snd !responses) in
  (match (monitor, telemetry) with
  | Some m, Some sink when monitor_owns_attach ->
      Cdbs_analysis.Monitor.detach m sink
  | _ -> ());
  (match monitor with
  | Some m when Cdbs_core.Invariants.active () ->
      Cdbs_analysis.Monitor.check_exn
        ~context:"Simulator.run_open_with_migration" m
  | _ -> ());
  {
    run =
      {
        completed = !completed;
        makespan;
        throughput =
          (if makespan > 0. then float_of_int !completed /. makespan else 0.);
        avg_response =
          (if !completed > 0 then !response_sum /. float_of_int !completed
           else 0.);
        max_response = !response_max;
        p50_response = p50;
        p95_response = p95;
        p99_response = p99;
        busy;
        utilization =
          Array.map (fun b -> if makespan > 0. then b /. makespan else 0.) busy;
        errors = !errors;
      };
    copied_mb = plan.Planner.copy_mb;
    replayed_mb = !replayed_mb;
    copy_done = schedule.Schedule.copy_done;
    drops_at = schedule.Schedule.drops_at;
    min_live_replicas =
      List.map
        (fun ((c : Query_class.t), m) -> (c.Query_class.id, !m))
        mins;
    target_deployed;
    responses = List.rev !responses;
  }

(* ------------------------------------------------------------------ *)
(* Fault injection: crash / recover / slowdown on the event clock      *)
(* ------------------------------------------------------------------ *)

module Fault = Cdbs_faults.Fault
module Retry = Cdbs_faults.Retry

type recovery = {
  rec_backend : int;
  crashed_at : float;
  recovered_at : float;
  mutable caught_up_at : float;
      (* [nan] while catch-up is pending (or forever, if the backend
         crashed again before finishing it) *)
  replayed_mb : float;
}

type fault_outcome = {
  run : outcome;
  offered : int;
  availability : float;
  retried_requests : int;
  retries : int;
  aborted : int;
  timeouts : int;
  shed : int;
  shed_updates : int;
  hedged : int;
  hedge_wins : int;
  breaker_trips : int;
  wasted_work : float;
  offered_updates : int;
  completed_updates : int;
  cancelled_work : float;
  catch_up_mb : float;
  recoveries : recovery list;
  downtime : float array;
  max_concurrent_down : int;
  events : int;
  responses : (float * float) list;
}

(* One retry chain of a read whose service was lost to a crash (or that
   could not be routed at all). *)
type read_ctx = {
  rc_uid : int;
  rc_class : string;
  rc_cost_mb : float option;
  rc_arrival : float;  (* original arrival: responses measure from here *)
  rc_attempt : int;  (* 0 = first attempt *)
  rc_deadline : float;  (* absolute client give-up instant; [infinity]
                           when no deadline policy is active *)
}

(* Work booked on a backend's queue, kept so a crash can cancel it. *)
type booked_kind = Bk_read of read_ctx | Bk_update | Bk_catchup

type booked = {
  bk_start : float;
  bk_finish : float;
  bk_service : float;
  bk_mb : float;
  bk_kind : booked_kind;
}

type dyn_event =
  | Retry_at of float * read_ctx
  | Catchup_done of { at : float; backend : int; gen : int }
  | Hedge_at of { at : float; primary : int; ctx : read_ctx }

let dyn_time = function
  | Retry_at (at, _) -> at
  | Catchup_done { at; _ } -> at
  | Hedge_at { at; _ } -> at

(* Everything the fault engine's event clock processes, unified so it can
   ride a single priority queue.  [Partition] and [ZoneOutage] schedule
   entries are expanded into start/heal pairs before the run so the clock
   only ever sees instantaneous events. *)
type sim_event =
  | Ev_fault of Fault.timed
  | Ev_cut of { backends : int list; heal : bool; zone : int option }
  | Ev_dyn of dyn_event
  | Ev_arrival of Request.t

module Resilience = Cdbs_resilience

let run_open_with_faults ?(policy = Retry.default) ?rng ?resilience ?telemetry
    ?monitor ?topology ?(partition_timeout = 1.) config alloc requests ~faults
    =
  let n = Allocation.num_backends alloc in
  if Array.length config.speeds <> n then
    invalid_arg "Simulator.run_open_with_faults: speeds length <> backends";
  (match topology with
  | Some t when Cdbs_core.Topology.num_backends t <> n ->
      invalid_arg
        "Simulator.run_open_with_faults: topology backend count <> allocation"
  | _ -> ());
  if not (partition_timeout >= 0.) then
    invalid_arg "Simulator.run_open_with_faults: partition_timeout < 0";
  let zone_of =
    Option.map
      (fun t -> Array.init n (Cdbs_core.Topology.zone_of t))
      topology
  in
  (match Fault.validate ?zone_of ~num_backends:n faults with
  | Ok () -> ()
  | Error e -> invalid_arg ("Simulator.run_open_with_faults: " ^ e));
  (* A monitor needs an event stream even when the caller brought no sink
     of its own: give it a small private ring (only the subscription
     matters; nobody reads the ring). *)
  let telemetry =
    match (telemetry, monitor) with
    | None, Some _ -> Some (Tel.Sink.create ~capacity:64 ())
    | _ -> telemetry
  in
  let monitor_owns_attach =
    match (monitor, telemetry) with
    | Some m, Some sink -> Cdbs_analysis.Monitor.attach m sink
    | _ -> false
  in
  let requests = sorted_by_arrival requests in
  let offered = List.length requests in
  Tel.Sink.ev telemetry ~at:0. "run.start"
    [ ("backends", Tel.Trace.Int n); ("offered", Tel.Trace.Int offered) ];
  let sched = Scheduler.create alloc in
  let delta : unit Delta.t = Delta.create () in
  let busy = Array.make n 0. in
  let inflight = Array.make n [] in
  (* Per-backend lifecycle generation: bumped at every crash and recover so
     stale [Catchup_done] events from a superseded epoch are ignored. *)
  let gen = Array.make n 0 in
  (* Partition / split-brain fencing state.  [partitioned] marks a backend
     currently isolated by a network partition (its process runs but no
     traffic reaches it); [epoch] is the monotonic fencing token bumped at
     every heal; [fenced] marks a healed backend that must finish its delta
     catch-up before its fence lifts and it may serve reads again. *)
  let partitioned = Array.make n false in
  let fenced = Array.make n false in
  let epoch = Array.make n 0 in
  (* Apply volume lost on the backend itself (cancelled in-flight update
     applications and cancelled catch-up replay) — rejoins owe it on top of
     the delta journal's while-down captures. *)
  let lost_mb = Array.make n 0. in
  let slow_factor = Array.make n 1. and slow_until = Array.make n 0. in
  let down_since = Array.make n nan in
  let downtime = Array.make n 0. in
  let resident =
    Array.init n (fun b ->
        Cdbs_core.Fragment.set_size (Allocation.fragments_of alloc b))
  in
  (* uid -> (original arrival, response); reads are retracted from here
     when a crash cancels them and re-inserted when a retry lands. *)
  let results : (int, float * float) Hashtbl.t =
    Hashtbl.create (max 16 offered)
  in
  let retried : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let pending_catchup : (int, recovery) Hashtbl.t = Hashtbl.create 4 in
  let retries = ref 0 and aborted = ref 0 and timeouts = ref 0 in
  (* Resilience defenses: each independently optional; all [None] (the
     default) reproduces the legacy engine exactly. *)
  let res =
    match resilience with Some r -> r | None -> Resilience.Policy.off
  in
  let admission = res.Resilience.Policy.admission in
  (* Simulated-clock cursor for observers that fire from inside callbacks
     (the breaker transition hook carries no [now] of its own). *)
  let now_ref = ref 0. in
  let on_transition =
    match telemetry with
    | None -> None
    | Some _ ->
        Some
          (fun ~backend (st : Resilience.Breaker.state) ->
            Tel.Sink.ev telemetry ~at:!now_ref "breaker.transition"
              [
                ("backend", Tel.Trace.Int backend);
                ("state", Tel.Trace.Str (Resilience.Breaker.state_label st));
              ])
  in
  let breaker =
    Option.map
      (fun config -> Resilience.Breaker.create ~config ?on_transition n)
      res.Resilience.Policy.breaker
  in
  let hedge = Option.map Resilience.Hedge.create res.Resilience.Policy.hedge in
  let deadline_on = res.Resilience.Policy.deadline <> None in
  let deadline_of ~arrival =
    match res.Resilience.Policy.deadline with
    | Some d -> arrival +. d.Resilience.Deadline.budget
    | None -> infinity
  in
  let healthy_at now =
    match breaker with
    | None -> None
    | Some br ->
        Some (fun b -> Resilience.Breaker.allows br ~backend:b ~now)
  in
  let breaker_success ~now b ~latency =
    match breaker with
    | None -> ()
    | Some br -> Resilience.Breaker.record_success br ~backend:b ~now ~latency
  in
  let shed = ref 0 and hedged = ref 0 and hedge_wins = ref 0 in
  let wasted_work = ref 0. in
  let offered_updates = ref 0 and completed_updates = ref 0 in
  let cancelled_work = ref 0. and catch_up_mb = ref 0. in
  let recoveries = ref [] in
  let cur_down = ref 0 and max_down = ref 0 in
  let uid = ref 0 in
  (* The event clock lives on one priority queue.  Ranks order the three
     event categories at equal instants exactly as the historical
     three-way sorted-list merge did — faults first, then internal events
     (retries, catch-ups, hedges), then arrivals — and insertion order
     breaks the remaining ties (FIFO within a category), so outcomes are
     bit-identical to the list-based engine. *)
  let q : sim_event Heap.t = Heap.create ~capacity:(max 256 (2 * offered)) () in
  List.iter
    (fun (f : Fault.timed) ->
      match f.Fault.event with
      | Fault.Partition { backends; duration } ->
          Heap.add q ~time:f.Fault.at ~rank:0
            (Ev_cut { backends; heal = false; zone = None });
          Heap.add q
            ~time:(f.Fault.at +. duration)
            ~rank:0
            (Ev_cut { backends; heal = true; zone = None })
      | Fault.ZoneOutage { zone; duration } ->
          (* Validation already required a topology for zone faults. *)
          let members =
            match topology with
            | Some t -> Cdbs_core.Topology.backends_in t zone
            | None -> []
          in
          Heap.add q ~time:f.Fault.at ~rank:0
            (Ev_cut { backends = members; heal = false; zone = Some zone });
          Heap.add q
            ~time:(f.Fault.at +. duration)
            ~rank:0
            (Ev_cut { backends = members; heal = true; zone = Some zone })
      | Fault.Crash _ | Fault.Recover _ | Fault.Slowdown _
      | Fault.Workload_shift _ ->
          Heap.add q ~time:f.Fault.at ~rank:0 (Ev_fault f))
    (Fault.sort faults);
  List.iter
    (fun (r : Request.t) ->
      Heap.add q ~time:r.Request.arrival ~rank:2 (Ev_arrival r))
    requests;
  let insert_dyn e = Heap.add q ~time:(dyn_time e) ~rank:1 (Ev_dyn e) in
  (* Service quote: what booking this work on [b] right now would cost,
     without booking it.  Admission and deadline checks run on the quote;
     [commit] turns an accepted quote into a booking. *)
  let quote ~now ~mb ~replicas ~is_update b ~factor =
    let slow = if now < slow_until.(b) then slow_factor.(b) else 1. in
    let service =
      factor *. slow
      *. Cost_model.service_time config.cost ~class_mb:mb
           ~resident_mb:resident.(b) ~speed:config.speeds.(b) ~is_update
           ~replicas
    in
    let start = max now (Scheduler.free_at sched ~backend:b) in
    (start, start +. service, service)
  in
  let kind_label = function
    | Bk_read _ -> "read"
    | Bk_update -> "update"
    | Bk_catchup -> "catchup"
  in
  let serve_event ~at ~kind b ~start ~finish =
    let base =
      [
        ("backend", Tel.Trace.Int b);
        ("kind", Tel.Trace.Str (kind_label kind));
        ("start", Tel.Trace.Float start);
        ("finish", Tel.Trace.Float finish);
      ]
    in
    (* Reads carry their query-class id so online estimators can harvest
       measured per-class service times straight off the trace. *)
    let attrs =
      match kind with
      | Bk_read rc -> base @ [ ("cls", Tel.Trace.Str rc.rc_class) ]
      | Bk_update | Bk_catchup -> base
    in
    Tel.Sink.ev telemetry ~at "backend.serve" attrs
  in
  let commit ~mb ~kind b (start, finish, service) =
    Scheduler.book sched ~backend:b ~finish;
    busy.(b) <- busy.(b) +. service;
    inflight.(b) <-
      { bk_start = start; bk_finish = finish; bk_service = service;
        bk_mb = mb; bk_kind = kind }
      :: inflight.(b);
    serve_event ~at:!now_ref ~kind b ~start ~finish;
    finish
  in
  let serve ~now ~mb ~replicas ~is_update ~kind b ~factor =
    commit ~mb ~kind b (quote ~now ~mb ~replicas ~is_update b ~factor)
  in
  (* Queue depth for admission control.  Completed bookings are pruned on
     the way (they are kept only so a crash can cancel in-flight work). *)
  let depth_of b ~now =
    let live = List.filter (fun it -> it.bk_finish > now) inflight.(b) in
    inflight.(b) <- live;
    List.length live
  in
  (* Remove a booking and refund its not-yet-served tail after [from_].
     The backend's queue drains earlier by that amount — an approximation
     (bookings made between the victim and now keep their recorded finish
     times), matching the spirit of crash cancellation. *)
  let cancel_booking b it ~from_ =
    inflight.(b) <- List.filter (fun x -> x != it) inflight.(b);
    let refund = max 0. (it.bk_finish -. max it.bk_start from_) in
    busy.(b) <- busy.(b) -. refund;
    Scheduler.book sched ~backend:b
      ~finish:(Scheduler.free_at sched ~backend:b -. refund);
    refund
  in
  (* Shed-oldest-first: evict the queued (not yet started) read that has
     waited longest; it is the one most likely already past its deadline.
     Returns [true] when a victim was found and evicted. *)
  let shed_oldest_queued b ~now =
    let victim =
      List.fold_left
        (fun acc it ->
          match it.bk_kind with
          | Bk_read rc when it.bk_start > now -> (
              match acc with
              | Some (best_rc, _) when best_rc.rc_arrival <= rc.rc_arrival ->
                  acc
              | _ -> Some (rc, it))
          | _ -> acc)
        None inflight.(b)
    in
    match victim with
    | None -> false
    | Some (rc, it) ->
        ignore (cancel_booking b it ~from_:now);
        Hashtbl.remove results rc.rc_uid;
        incr shed;
        incr aborted;
        Tel.Sink.ev telemetry ~at:now "request.shed"
          [ ("uid", Tel.Trace.Int rc.rc_uid);
            ("reason", Tel.Trace.Str "evicted_oldest") ];
        true
  in
  let find_read_booking b u =
    List.find_opt
      (fun it ->
        match it.bk_kind with Bk_read rc -> rc.rc_uid = u | _ -> false)
      inflight.(b)
  in
  (* An attempt of read [rc] failed at [now]: try again after backoff,
     unless the retry budget is spent.  With a deadline policy active the
     end-to-end budget governs instead of the fixed attempt count: the
     chain retries as long as the backoff lands inside the budget.
     [extra_delay] models slow failure: a partitioned backend does not
     reset connections, so the client only notices after a network timeout
     and the retry fires that much later. *)
  let schedule_retry ?(extra_delay = 0.) ~now rc =
    let attempt = rc.rc_attempt + 1 in
    if (not deadline_on) && Retry.gives_up policy ~attempt then incr aborted
    else
      let at = now +. extra_delay +. Retry.backoff ?rng policy ~attempt in
      let budget_spent =
        if deadline_on then at >= rc.rc_deadline
        else Retry.timed_out policy ~arrival:rc.rc_arrival ~now:at
      in
      if budget_spent then begin
        incr aborted;
        incr timeouts
      end
      else begin
        incr retries;
        Tel.Sink.ev telemetry ~at:now "request.retry"
          ([ ("uid", Tel.Trace.Int rc.rc_uid);
             ("attempt", Tel.Trace.Int attempt);
             ("retry_at", Tel.Trace.Float at) ]
          @
          (* The budget left when the retry fires — the monitor checks it
             decreases monotonically along the chain. *)
          if deadline_on then
            [ ("remaining_s", Tel.Trace.Float (rc.rc_deadline -. at)) ]
          else []);
        Hashtbl.replace retried rc.rc_uid ();
        insert_dyn (Retry_at (at, { rc with rc_attempt = attempt }))
      end
  in
  (* Arm a speculative second dispatch if this read is predicted to exceed
     the adaptive hedge delay. *)
  let maybe_hedge ~now rc b finish =
    match hedge with
    | None -> ()
    | Some h ->
        let d = Resilience.Hedge.delay h in
        Resilience.Hedge.observe h (finish -. now);
        if finish -. now > d then begin
          Tel.Sink.ev telemetry ~at:now "request.hedge_armed"
            [ ("uid", Tel.Trace.Int rc.rc_uid);
              ("primary", Tel.Trace.Int b);
              ("fire_at", Tel.Trace.Float (now +. d)) ];
          insert_dyn (Hedge_at { at = now +. d; primary = b; ctx = rc })
        end
  in
  let handle_read ~now rc =
    if deadline_on && now >= rc.rc_deadline then begin
      (* The client abandoned the request before this attempt started. *)
      incr timeouts;
      incr aborted
    end
    else
      (* Route without materializing a Request or candidate lists: class
         lookup is indexed and target selection is two array scans. *)
      match Scheduler.find_class sched rc.rc_class with
      | None -> schedule_retry ~now rc
      | Some c -> (
          match
            Scheduler.best_read_target ?healthy:(healthy_at now) sched ~now c
          with
          | None -> schedule_retry ~now rc
          | Some b -> (
              let mb =
                match rc.rc_cost_mb with
                | Some mb -> mb
                | None -> Query_class.size c
              in
              (* The quote is pure, so an admission check and the booking it
                 admits share one; only a shed (which reshapes the queue)
                 forces a re-quote. *)
              let book q =
                let _, finish, service = q in
                ignore (commit ~mb ~kind:(Bk_read rc) b q);
                breaker_success ~now b ~latency:(finish -. now);
                if deadline_on && finish > rc.rc_deadline then begin
                  (* Without admission control this work is booked anyway and
                     wasted: the client is gone when it completes. *)
                  incr timeouts;
                  incr aborted;
                  wasted_work := !wasted_work +. service
                end
                else begin
                  Hashtbl.replace results rc.rc_uid
                    (rc.rc_arrival, finish -. rc.rc_arrival);
                  maybe_hedge ~now rc b finish
                end
              in
              let fresh_quote () =
                quote ~now ~mb ~replicas:1 ~is_update:false b ~factor:1.
              in
              match admission with
              | None -> book (fresh_quote ())
              | Some pol ->
                  let ((_, finish, _) as q) = fresh_quote () in
                  if deadline_on && finish > rc.rc_deadline then begin
                    (* Deadline-aware admission: refuse up front instead of
                       serving work whose client will have abandoned it. *)
                    incr timeouts;
                    incr aborted
                  end
                  else
                    let depth = depth_of b ~now in
                    let pending = Scheduler.pending sched ~backend:b ~now in
                    (match
                       Resilience.Admission.decide pol ~depth ~pending
                         ~is_update:false
                     with
                    | Resilience.Admission.Admit -> book q
                    | Resilience.Admission.Shed ->
                        if shed_oldest_queued b ~now then book (fresh_quote ())
                        else begin
                          (* Queue holds no evictable read: shed the
                             newcomer. *)
                          incr shed;
                          incr aborted;
                          Tel.Sink.ev telemetry ~at:now "request.shed"
                            [ ("uid", Tel.Trace.Int rc.rc_uid);
                              ("reason", Tel.Trace.Str "refused_newcomer") ]
                        end)))
  in
  let handle_update ~now (r : Request.t) u =
    incr offered_updates;
    (* Updates bypass every defense: admission never sheds them, deadlines
       never abandon them, breakers never steer them — ROWA requires each
       live replica of a written partition to apply every update. *)
    match Scheduler.route sched ~now r with
    | Error _ ->
        (* No live replica holds the data: ROWA cannot commit anywhere.
           Updates are not retried (see {!Cdbs_faults.Retry}). *)
        incr aborted
    | Ok targets ->
        let mb =
          match r.Request.cost_mb with
          | Some mb -> mb
          | None -> (
              match Scheduler.find_class sched r.Request.class_id with
              | Some c -> Query_class.size c
              | None -> 0.)
        in
        (* Crashed backends holding the touched fragments journal the
           volume; it is replayed when they rejoin. *)
        (match Scheduler.find_class sched r.Request.class_id with
        | Some c ->
            let frags = c.Query_class.fragments in
            let per =
              mb /. float_of_int (max 1 (Fragment.Set.cardinal frags))
            in
            Fragment.Set.iter
              (fun f -> ignore (Delta.capture delta ~fragment:f ~item:() ~mb:per))
              frags
        | None -> ());
        let split = Protocol.plan config.protocol ~targets in
        let replicas = List.length split.Protocol.sync in
        let finish_all = ref now in
        List.iter
          (fun b ->
            let f =
              serve ~now ~mb ~replicas ~is_update:true ~kind:Bk_update b
                ~factor:1.
            in
            if f > !finish_all then finish_all := f)
          split.Protocol.sync;
        List.iter
          (fun (b, factor) ->
            ignore
              (serve ~now ~mb ~replicas ~is_update:true ~kind:Bk_update b
                 ~factor))
          split.Protocol.async;
        incr completed_updates;
        Hashtbl.replace results u (r.Request.arrival, !finish_all -. now)
  in
  (* Take a backend out of service.  [cut = false] is a crash: clients see
     connections reset and retry immediately.  [cut = true] is a network
     partition: the process keeps running but is unreachable, so in-flight
     reads hang for [partition_timeout] before failing over.  Either way
     the backend's replicas go stale and the delta journal starts
     capturing the update volume they miss. *)
  let take_down ~now ~cut b =
    if Scheduler.is_up sched ~backend:b then begin
      (if cut then begin
         partitioned.(b) <- true;
         Tel.Sink.ev telemetry ~at:now "backend.partition"
           [ ("backend", Tel.Trace.Int b) ]
       end
       else
         Tel.Sink.ev telemetry ~at:now "backend.crash"
           [ ("backend", Tel.Trace.Int b) ]);
      (* A crash interrupts a fencing catch-up: the [gen] bump below
         invalidates its [Catchup_done] and the fence state evaporates
         with the process (the next rejoin starts a fresh catch-up). *)
      fenced.(b) <- false;
      Scheduler.set_down sched ~backend:b;
      down_since.(b) <- now;
      incr cur_down;
      if !cur_down > !max_down then max_down := !cur_down;
      gen.(b) <- gen.(b) + 1;
      Hashtbl.remove pending_catchup b;
      let items = inflight.(b) in
      inflight.(b) <- [];
      List.iter
        (fun it ->
          if it.bk_finish > now then begin
            let lost = it.bk_finish -. max it.bk_start now in
            cancelled_work := !cancelled_work +. lost;
            busy.(b) <- busy.(b) -. lost;
            match it.bk_kind with
            | Bk_read rc ->
                (* The client notices the broken connection at the crash
                   instant and re-issues against a surviving replica; under
                   a partition nothing resets, so it waits out the network
                   timeout first (slow failure). *)
                Hashtbl.remove results rc.rc_uid;
                schedule_retry
                  ~extra_delay:(if cut then partition_timeout else 0.)
                  ~now rc
            | Bk_update | Bk_catchup ->
                (* Un-applied fraction of the replica write (the update
                   itself committed on the survivors): owed at rejoin. *)
                lost_mb.(b) <-
                  lost_mb.(b) +. (it.bk_mb *. lost /. it.bk_service)
          end)
        items;
      Scheduler.book sched ~backend:b ~finish:now;
      Fragment.Set.iter
        (fun f -> Delta.open_capture delta ~dest:b ~fragment:f)
        (Allocation.fragments_of alloc b)
    end
  in
  let crash ~now b = take_down ~now ~cut:false b in
  (* Bring a backend back.  [healed = false] is a plain crash recovery;
     [healed = true] ends a partition: the heal bumps the backend's
     fencing epoch and — when it missed updates — keeps it fenced until
     the delta catch-up completes, so a stale minority can never serve a
     read the majority already moved past (split-brain prevention). *)
  let rejoin ~now ~healed b =
    if not (Scheduler.is_up sched ~backend:b) then begin
      decr cur_down;
      downtime.(b) <- downtime.(b) +. (now -. down_since.(b));
      gen.(b) <- gen.(b) + 1;
      let missed = ref lost_mb.(b) in
      lost_mb.(b) <- 0.;
      Fragment.Set.iter
        (fun f ->
          let _, mb = Delta.drain delta ~dest:b ~fragment:f in
          missed := !missed +. mb)
        (Allocation.fragments_of alloc b);
      let crashed_at = down_since.(b) in
      if healed then begin
        partitioned.(b) <- false;
        epoch.(b) <- epoch.(b) + 1;
        Tel.Sink.ev telemetry ~at:now "backend.heal"
          [ ("backend", Tel.Trace.Int b);
            ("epoch", Tel.Trace.Int epoch.(b));
            ("replay_mb", Tel.Trace.Float !missed) ]
      end
      else
        Tel.Sink.ev telemetry ~at:now "backend.recover"
          [ ("backend", Tel.Trace.Int b);
            ("replay_mb", Tel.Trace.Float !missed) ];
      if !missed <= 0. then begin
        Scheduler.set_up sched ~backend:b;
        if healed then
          (* Nothing was missed: the fence lifts at the heal instant. *)
          Tel.Sink.ev telemetry ~at:now "backend.fence_lift"
            [ ("backend", Tel.Trace.Int b);
              ("epoch", Tel.Trace.Int epoch.(b)) ];
        recoveries :=
          { rec_backend = b; crashed_at; recovered_at = now;
            caught_up_at = now; replayed_mb = 0. }
          :: !recoveries
      end
      else begin
        (* Rejoin stale: replay the missed volume (the delta-journal cost
           model, as at a migration cutover) before serving reads again.
           New updates queue behind the replay, keeping the backend
           consistent from the catch-up point on. *)
        Scheduler.set_up ~stale:true sched ~backend:b;
        if healed then fenced.(b) <- true;
        catch_up_mb := !catch_up_mb +. !missed;
        let replay =
          !missed *. config.cost.Cost_model.scan_seconds_per_mb
          /. config.speeds.(b)
        in
        let start = max now (Scheduler.free_at sched ~backend:b) in
        let finish = start +. replay in
        Scheduler.book sched ~backend:b ~finish;
        busy.(b) <- busy.(b) +. replay;
        inflight.(b) <-
          { bk_start = start; bk_finish = finish; bk_service = replay;
            bk_mb = !missed; bk_kind = Bk_catchup }
          :: inflight.(b);
        serve_event ~at:now ~kind:Bk_catchup b ~start ~finish;
        let r =
          { rec_backend = b; crashed_at; recovered_at = now;
            caught_up_at = nan; replayed_mb = !missed }
        in
        recoveries := r :: !recoveries;
        Hashtbl.replace pending_catchup b r;
        insert_dyn (Catchup_done { at = finish; backend = b; gen = gen.(b) })
      end
    end
  in
  let recover ~now b = rejoin ~now ~healed:false b in
  (* A partition start/heal, or a whole-zone outage (correlated crash of
     every member, bracketed by zone.outage / zone.heal trace events). *)
  let apply_cut ~now ~heal ~zone backends =
    match zone with
    | Some z ->
        if heal then begin
          List.iter (fun b -> rejoin ~now ~healed:false b) backends;
          Tel.Sink.ev telemetry ~at:now "zone.heal"
            [ ("zone", Tel.Trace.Int z) ]
        end
        else begin
          Tel.Sink.ev telemetry ~at:now "zone.outage"
            [ ("zone", Tel.Trace.Int z);
              ("backends", Tel.Trace.Int (List.length backends)) ];
          List.iter (fun b -> take_down ~now ~cut:false b) backends
        end
    | None ->
        if heal then
          List.iter
            (fun b -> if partitioned.(b) then rejoin ~now ~healed:true b)
            backends
        else List.iter (fun b -> take_down ~now ~cut:true b) backends
  in
  let apply_fault ({ Fault.at = now; event } : Fault.timed) =
    match event with
    | Fault.Crash b -> crash ~now b
    | Fault.Recover b -> recover ~now b
    | Fault.Slowdown { backend = b; factor; duration } ->
        Tel.Sink.ev telemetry ~at:now "backend.slowdown"
          [ ("backend", Tel.Trace.Int b);
            ("factor", Tel.Trace.Float factor);
            ("duration_s", Tel.Trace.Float duration) ];
        slow_factor.(b) <- factor;
        slow_until.(b) <- now +. duration
    | Fault.Workload_shift { mix } ->
        (* The request stream is pre-generated, so the engine cannot
           change arrivals mid-run; it announces the shift so monitors
           and online estimators see drift on the event clock, and the
           window-driving caller regenerates subsequent arrivals. *)
        Tel.Sink.ev telemetry ~at:now "workload.shift"
          [ ("classes", Tel.Trace.Int (List.length mix)) ]
    | Fault.Partition _ | Fault.ZoneOutage _ ->
        (* Expanded into [Ev_cut] start/heal pairs when the heap was
           loaded; never reaches the clock in this shape. *)
        ()
  in
  let apply_dyn = function
    | Retry_at (now, rc) -> handle_read ~now rc
    | Catchup_done { at = now; backend = b; gen = g } ->
        if
          g = gen.(b)
          && Scheduler.is_up sched ~backend:b
          && Scheduler.is_stale sched ~backend:b
        then begin
          Scheduler.set_stale sched ~backend:b ~stale:false;
          (if fenced.(b) then begin
             (* The healed backend finished replaying what it missed while
                partitioned: its fence lifts and it may serve reads again,
                under the epoch minted at heal time. *)
             fenced.(b) <- false;
             Tel.Sink.ev telemetry ~at:now "backend.fence_lift"
               [ ("backend", Tel.Trace.Int b);
                 ("epoch", Tel.Trace.Int epoch.(b)) ]
           end
           else
             Tel.Sink.ev telemetry ~at:now "backend.catchup_done"
               [ ("backend", Tel.Trace.Int b) ]);
          match Hashtbl.find_opt pending_catchup b with
          | Some r ->
              r.caught_up_at <- now;
              Hashtbl.remove pending_catchup b
          | None -> ()
        end
    | Hedge_at { at = now; primary; ctx = rc } -> (
        (* Speculatively dispatch the read to the next-best replica and
           keep whichever leg completes first; the loser's unserved tail
           is cancelled on the event clock. *)
        match Hashtbl.find_opt results rc.rc_uid with
        | Some (arr, resp) when arr +. resp > now -> (
            let f1 = arr +. resp in
            match find_read_booking primary rc.rc_uid with
            | None -> () (* crash-cancelled or shed since it was armed *)
            | Some it1 -> (
                match Scheduler.find_class sched rc.rc_class with
                | None -> ()
                | Some c -> (
                    let best =
                      Scheduler.best_read_target
                        ?healthy:(healthy_at now) ~exclude:primary sched ~now
                        c
                    in
                    match best with
                    | None -> () (* no second replica to hedge on *)
                    | Some b2 ->
                        let mb =
                          match rc.rc_cost_mb with
                          | Some mb -> mb
                          | None -> Query_class.size c
                        in
                        let ((s2, f2, sv2) as q2) =
                          quote ~now ~mb ~replicas:1 ~is_update:false b2
                            ~factor:1.
                        in
                        let pointless =
                          (* a hedge that cannot beat the deadline is
                             wasted capacity by construction *)
                          (deadline_on && f2 > rc.rc_deadline)
                          ||
                          match admission with
                          | None -> false
                          | Some pol ->
                              (* A hedge never sheds foreground work. *)
                              Resilience.Admission.decide pol
                                ~depth:(depth_of b2 ~now)
                                ~pending:
                                  (Scheduler.pending sched ~backend:b2 ~now)
                                ~is_update:false
                              = Resilience.Admission.Shed
                        in
                        if not pointless then begin
                          incr hedged;
                          if f2 < f1 then begin
                            incr hedge_wins;
                            Tel.Sink.ev telemetry ~at:now "request.hedge_win"
                              [ ("uid", Tel.Trace.Int rc.rc_uid);
                                ("backend", Tel.Trace.Int b2) ];
                            ignore (commit ~mb ~kind:(Bk_read rc) b2 q2);
                            (* Cancel the losing primary leg: its already-
                               served prefix is sunk cost. *)
                            let refund = cancel_booking primary it1 ~from_:f2 in
                            wasted_work :=
                              !wasted_work +. (it1.bk_service -. refund);
                            Hashtbl.replace results rc.rc_uid
                              (rc.rc_arrival, f2 -. rc.rc_arrival);
                            breaker_success ~now b2 ~latency:(f2 -. now)
                          end
                          else begin
                            (* The primary wins: the hedge leg occupies b2
                               until the win instant, then cancels. *)
                            let consumed = max 0. (min sv2 (f1 -. s2)) in
                            if consumed > 0. then begin
                              Scheduler.book sched ~backend:b2
                                ~finish:(s2 +. consumed);
                              busy.(b2) <- busy.(b2) +. consumed;
                              wasted_work := !wasted_work +. consumed
                            end
                          end
                        end)))
        | _ -> () (* completed before the hedge fired, or mid-retry *))
  in
  (* The event clock: pop events in (time, rank, insertion) order.
     Crucially, fault events keep being processed after the last
     arrival — a crash still cancels whatever is queued. *)
  let events_processed = ref 0 in
  let rec loop () =
    match Heap.pop_timed q with
    | None -> ()
    | Some (at, ev) ->
        incr events_processed;
        now_ref := at;
        (match ev with
        | Ev_fault f -> apply_fault f
        | Ev_cut { backends; heal; zone } -> apply_cut ~now:at ~heal ~zone backends
        | Ev_dyn e -> apply_dyn e
        | Ev_arrival r ->
            let u = !uid in
            incr uid;
            if r.Request.is_update then handle_update ~now:r.Request.arrival r u
            else
              handle_read ~now:r.Request.arrival
                {
                  rc_uid = u;
                  rc_class = r.Request.class_id;
                  rc_cost_mb = r.Request.cost_mb;
                  rc_arrival = r.Request.arrival;
                  rc_attempt = 0;
                  rc_deadline = deadline_of ~arrival:r.Request.arrival;
                });
        loop ()
  in
  loop ();
  let makespan =
    let m = ref 0. in
    for b = 0 to n - 1 do
      if Scheduler.free_at sched ~backend:b > !m then
        m := Scheduler.free_at sched ~backend:b
    done;
    !m
  in
  let completed = Hashtbl.length results in
  let all =
    Hashtbl.fold (fun u (arrival, resp) acc -> (arrival, resp, u) :: acc)
      results []
    |> List.sort (fun (a1, _, u1) (a2, _, u2) ->
           let c = Float.compare a1 a2 in
           if c <> 0 then c else Int.compare u1 u2)
  in
  let response_sum =
    List.fold_left (fun acc (_, r, _) -> acc +. r) 0. all
  in
  let response_max =
    List.fold_left (fun acc (_, r, _) -> max acc r) 0. all
  in
  let p50, p95, p99 = percentiles_of (List.map (fun (_, r, _) -> r) all) in
  (match telemetry with
  | None -> ()
  | Some sink ->
      let h = Tel.Metrics.histogram sink.Tel.Sink.metrics "sim.response_s" in
      List.iter (fun (_, r, _) -> Tel.Histogram.record h r) all;
      let cn = Tel.Sink.cn telemetry in
      cn "sim.events" !events_processed;
      cn "sim.offered" offered;
      cn "sim.completed" completed;
      cn "sim.retries" !retries;
      cn "sim.aborted" !aborted;
      cn "sim.timeouts" !timeouts;
      cn "sim.shed" !shed;
      cn "sim.hedged" !hedged;
      cn "sim.hedge_wins" !hedge_wins);
  Tel.Sink.ev telemetry ~at:makespan "run.summary"
    [
      ("offered", Tel.Trace.Int offered);
      ("completed", Tel.Trace.Int completed);
      ("aborted", Tel.Trace.Int !aborted);
      ("shed", Tel.Trace.Int !shed);
      ("timeouts", Tel.Trace.Int !timeouts);
      ("retries", Tel.Trace.Int !retries);
      ("hedged", Tel.Trace.Int !hedged);
      ("hedge_wins", Tel.Trace.Int !hedge_wins);
      ("offered_updates", Tel.Trace.Int !offered_updates);
      ("completed_updates", Tel.Trace.Int !completed_updates);
    ];
  (match (monitor, telemetry) with
  | Some m, Some sink when monitor_owns_attach ->
      Cdbs_analysis.Monitor.detach m sink
  | _ -> ());
  (match monitor with
  | Some m when Cdbs_core.Invariants.active () ->
      Cdbs_analysis.Monitor.check_exn
        ~context:"Simulator.run_open_with_faults" m
  | _ -> ());
  {
    run =
      {
        completed;
        makespan;
        throughput =
          (if makespan > 0. then float_of_int completed /. makespan else 0.);
        avg_response =
          (if completed > 0 then response_sum /. float_of_int completed
           else 0.);
        max_response = response_max;
        p50_response = p50;
        p95_response = p95;
        p99_response = p99;
        busy;
        utilization =
          Array.map (fun b -> if makespan > 0. then b /. makespan else 0.) busy;
        errors = !aborted;
      };
    offered;
    availability =
      (if offered > 0 then float_of_int completed /. float_of_int offered
       else 1.);
    retried_requests = Hashtbl.length retried;
    retries = !retries;
    aborted = !aborted;
    timeouts = !timeouts;
    shed = !shed;
    shed_updates = 0;
    (* updates are never shed; the field witnesses the invariant *)
    hedged = !hedged;
    hedge_wins = !hedge_wins;
    breaker_trips =
      (match breaker with
      | Some br -> Resilience.Breaker.trips br
      | None -> 0);
    wasted_work = !wasted_work;
    offered_updates = !offered_updates;
    completed_updates = !completed_updates;
    cancelled_work = !cancelled_work;
    catch_up_mb = !catch_up_mb;
    recoveries = List.rev !recoveries;
    downtime;
    max_concurrent_down = !max_down;
    events = !events_processed;
    responses = List.map (fun (a, r, _) -> (a, r)) all;
  }

(* Legacy entry point: permanent failures only.  Kept as a thin wrapper
   over the event-clock engine, which fixes two bugs of the old polling
   implementation: failures timed after the last arrival were never
   applied, and a backend crashing with queued work silently "completed"
   it.  Routing falls back to surviving replicas with the default retry
   policy, so an adequately k-safe allocation still reports zero errors. *)
let run_open_with_failures config alloc requests ~failures =
  (run_open_with_faults config alloc requests
     ~faults:(Fault.of_failures failures))
    .run
