module Allocation = Cdbs_core.Allocation
module Query_class = Cdbs_core.Query_class
module Fragment = Cdbs_core.Fragment
module Planner = Cdbs_migration.Planner
module Schedule = Cdbs_migration.Schedule
module Delta = Cdbs_migration.Delta

type config = {
  cost : Cost_model.params;
  speeds : float array;
  protocol : Protocol.t;
}

let homogeneous_config ?(cost = Cost_model.default)
    ?(protocol = Protocol.default) n =
  if n <= 0 then invalid_arg "Simulator.homogeneous_config";
  { cost; speeds = Array.make n 1.; protocol }

type outcome = {
  completed : int;
  makespan : float;
  throughput : float;
  avg_response : float;
  max_response : float;
  busy : float array;
  utilization : float array;
  errors : int;
}

let find_class alloc id =
  let classes = Allocation.classes alloc in
  let rec go i =
    if i >= Array.length classes then None
    else if classes.(i).Query_class.id = id then Some classes.(i)
    else go (i + 1)
  in
  go 0

let class_mb alloc (r : Request.t) =
  match r.Request.cost_mb with
  | Some mb -> mb
  | None -> (
      match find_class alloc r.Request.class_id with
      | Some c -> Query_class.size c
      | None -> 0.)

(* Open-mode runs trust arrival order; a caller handing over an unsorted
   list would silently simulate time running backwards (requests "arriving"
   before the clock reached them never queue).  Detect and stably sort
   instead. *)
let sorted_by_arrival requests =
  let rec is_sorted = function
    | (a : Request.t) :: (b :: _ as rest) ->
        a.Request.arrival <= b.Request.arrival && is_sorted rest
    | _ -> true
  in
  if is_sorted requests then requests
  else
    List.stable_sort
      (fun (a : Request.t) b -> Float.compare a.Request.arrival b.Request.arrival)
      requests

let run ?(failures = []) ~respect_arrivals config alloc requests =
  let n = Allocation.num_backends alloc in
  if Array.length config.speeds <> n then
    invalid_arg "Simulator.run: speeds length <> backend count";
  let requests =
    if respect_arrivals then sorted_by_arrival requests else requests
  in
  let sched = Scheduler.create alloc in
  let pending_failures =
    ref (List.sort (fun (a, _) (b, _) -> Stdlib.compare a b) failures)
  in
  let busy = Array.make n 0. in
  let completed = ref 0 and errors = ref 0 in
  let response_sum = ref 0. and response_max = ref 0. in
  let resident =
    Array.init n (fun b ->
        Cdbs_core.Fragment.set_size (Allocation.fragments_of alloc b))
  in
  List.iter
    (fun (r : Request.t) ->
      let now = if respect_arrivals then r.Request.arrival else 0. in
      let rec apply_failures () =
        match !pending_failures with
        | (at, b) :: rest when at <= now ->
            Scheduler.set_down sched ~backend:b;
            pending_failures := rest;
            apply_failures ()
        | _ -> ()
      in
      apply_failures ();
      match Scheduler.route sched ~now r with
      | Error _ -> incr errors
      | Ok targets ->
          let mb = class_mb alloc r in
          (* The protocol decides which replicas sit on the request's
             critical path; a read always has exactly one target. *)
          let split =
            if r.Request.is_update then
              Protocol.plan config.protocol ~targets
            else { Protocol.sync = targets; async = [] }
          in
          let replicas =
            if r.Request.is_update then List.length split.Protocol.sync else 1
          in
          let serve b ~factor =
            let service =
              factor
              *. Cost_model.service_time config.cost ~class_mb:mb
                   ~resident_mb:resident.(b) ~speed:config.speeds.(b)
                   ~is_update:r.Request.is_update ~replicas
            in
            let start = max now (Scheduler.free_at sched ~backend:b) in
            let finish = start +. service in
            Scheduler.book sched ~backend:b ~finish;
            busy.(b) <- busy.(b) +. service;
            finish
          in
          let finish_all = ref 0. in
          List.iter
            (fun b ->
              let finish = serve b ~factor:1. in
              if finish > !finish_all then finish_all := finish)
            split.Protocol.sync;
          (* Asynchronous replica application: occupies the queues but not
             the response. *)
          List.iter
            (fun (b, factor) -> ignore (serve b ~factor))
            split.Protocol.async;
          incr completed;
          let response = !finish_all -. now in
          response_sum := !response_sum +. response;
          if response > !response_max then response_max := response)
    requests;
  let makespan =
    let m = ref 0. in
    for b = 0 to n - 1 do
      if Scheduler.free_at sched ~backend:b > !m then
        m := Scheduler.free_at sched ~backend:b
    done;
    !m
  in
  {
    completed = !completed;
    makespan;
    throughput = (if makespan > 0. then float_of_int !completed /. makespan else 0.);
    avg_response =
      (if !completed > 0 then !response_sum /. float_of_int !completed else 0.);
    max_response = !response_max;
    busy;
    utilization =
      Array.map (fun b -> if makespan > 0. then b /. makespan else 0.) busy;
    errors = !errors;
  }

let run_batch config alloc requests =
  run ~respect_arrivals:false config alloc requests

let run_open config alloc requests =
  run ~respect_arrivals:true config alloc requests

let run_open_with_failures config alloc requests ~failures =
  run ~failures ~respect_arrivals:true config alloc requests

(* ------------------------------------------------------------------ *)
(* Open-mode execution during a live migration                         *)
(* ------------------------------------------------------------------ *)

type migration_outcome = {
  run : outcome;
  copied_mb : float;
  replayed_mb : float;
  copy_done : float;
  drops_at : float;
  min_live_replicas : (string * int) list;
  target_deployed : bool;
  responses : (float * float) list;
}

(* Migration events in time order; at equal instants a copy opens before
   its own (zero-length) cutover, and the drop barrier comes last. *)
type mig_event =
  | Copy_start of Schedule.timed_move
  | Cutover of Schedule.timed_move
  | Drop_all

let run_open_with_migration ?(copy_slowdown = 0.25) config ~target ~schedule
    requests =
  let plan = schedule.Schedule.plan in
  let n = plan.Planner.num_physical in
  if Array.length config.speeds <> n then
    invalid_arg
      "Simulator.run_open_with_migration: speeds length <> physical nodes";
  let requests = sorted_by_arrival requests in
  let sched = Scheduler.create_dynamic target ~live:plan.Planner.old_sets in
  let delta : unit Delta.t = Delta.create () in
  let busy = Array.make n 0. in
  let completed = ref 0 and errors = ref 0 in
  let response_sum = ref 0. and response_max = ref 0. in
  let responses = ref [] in
  let replayed_mb = ref 0. in
  let classes = Array.to_list (Allocation.classes target) in
  let mins =
    List.map (fun c -> (c, ref (Scheduler.live_replicas sched c))) classes
  in
  let observe_mins () =
    List.iter
      (fun (c, m) ->
        let r = Scheduler.live_replicas sched c in
        if r < !m then m := r)
      mins
  in
  let event_time = function
    | Copy_start tm -> tm.Schedule.start
    | Cutover tm -> tm.Schedule.finish
    | Drop_all -> schedule.Schedule.drops_at
  in
  let event_rank = function Copy_start _ -> 0 | Cutover _ -> 1 | Drop_all -> 2 in
  let events =
    ref
      (List.stable_sort
         (fun a b ->
           let c = Float.compare (event_time a) (event_time b) in
           if c <> 0 then c else Int.compare (event_rank a) (event_rank b))
         (Drop_all
         :: List.concat_map
              (fun tm -> [ Copy_start tm; Cutover tm ])
              schedule.Schedule.moves))
  in
  let apply_event = function
    | Copy_start tm ->
        Delta.open_capture delta ~dest:tm.Schedule.move.Planner.dest
          ~fragment:tm.Schedule.move.Planner.fragment
    | Cutover tm ->
        let dest = tm.Schedule.move.Planner.dest in
        let fragment = tm.Schedule.move.Planner.fragment in
        let _, mb = Delta.drain delta ~dest ~fragment in
        (* Replay the captured deltas on the destination before the
           fragment goes live there: foreground work on its queue. *)
        if mb > 0. then begin
          let replay =
            mb *. config.cost.Cost_model.scan_seconds_per_mb
            /. config.speeds.(dest)
          in
          let start =
            max tm.Schedule.finish (Scheduler.free_at sched ~backend:dest)
          in
          Scheduler.book sched ~backend:dest ~finish:(start +. replay);
          busy.(dest) <- busy.(dest) +. replay;
          replayed_mb := !replayed_mb +. mb
        end;
        Scheduler.add_live sched ~backend:dest
          (Fragment.Set.singleton fragment)
    | Drop_all ->
        List.iter
          (fun (d : Planner.drop) ->
            Scheduler.remove_live sched ~backend:d.Planner.at_backend
              (Fragment.Set.singleton d.Planner.victim))
          plan.Planner.drops
  in
  let rec apply_events now =
    match !events with
    | e :: rest when event_time e <= now ->
        events := rest;
        apply_event e;
        observe_mins ();
        apply_events now
    | _ -> ()
  in
  List.iter
    (fun (r : Request.t) ->
      let now = r.Request.arrival in
      apply_events now;
      match Scheduler.route sched ~now r with
      | Error _ -> incr errors
      | Ok targets ->
          let mb = class_mb target r in
          (* Updates arriving while a referenced fragment is on the wire
             go to the delta journal and are replayed at cutover. *)
          if r.Request.is_update then begin
            match find_class target r.Request.class_id with
            | Some c ->
                let frags = c.Query_class.fragments in
                let per_fragment =
                  mb /. float_of_int (max 1 (Fragment.Set.cardinal frags))
                in
                Fragment.Set.iter
                  (fun f ->
                    ignore
                      (Delta.capture delta ~fragment:f ~item:()
                         ~mb:per_fragment))
                  frags
            | None -> ()
          end;
          let split =
            if r.Request.is_update then Protocol.plan config.protocol ~targets
            else { Protocol.sync = targets; async = [] }
          in
          let replicas =
            if r.Request.is_update then List.length split.Protocol.sync else 1
          in
          let serve b ~factor =
            (* Background copy I/O contends with foreground work on the
               nodes it touches. *)
            let contention =
              if Schedule.copying schedule ~backend:b ~at:now then
                1. +. copy_slowdown
              else 1.
            in
            let service =
              factor *. contention
              *. Cost_model.service_time config.cost ~class_mb:mb
                   ~resident_mb:
                     (Fragment.set_size
                        (Scheduler.live_fragments sched ~backend:b))
                   ~speed:config.speeds.(b) ~is_update:r.Request.is_update
                   ~replicas
            in
            let start = max now (Scheduler.free_at sched ~backend:b) in
            let finish = start +. service in
            Scheduler.book sched ~backend:b ~finish;
            busy.(b) <- busy.(b) +. service;
            finish
          in
          let finish_all = ref 0. in
          List.iter
            (fun b ->
              let finish = serve b ~factor:1. in
              if finish > !finish_all then finish_all := finish)
            split.Protocol.sync;
          List.iter
            (fun (b, factor) -> ignore (serve b ~factor))
            split.Protocol.async;
          incr completed;
          let response = !finish_all -. now in
          response_sum := !response_sum +. response;
          if response > !response_max then response_max := response;
          responses := (now, response) :: !responses)
    requests;
  (* Requests may dry up before the rebalance completes: finish it. *)
  apply_events infinity;
  let makespan =
    let m = ref 0. in
    for b = 0 to n - 1 do
      if Scheduler.free_at sched ~backend:b > !m then
        m := Scheduler.free_at sched ~backend:b
    done;
    !m
  in
  let target_deployed =
    let ok = ref true in
    for b = 0 to n - 1 do
      if
        not
          (Fragment.Set.equal
             (Scheduler.live_fragments sched ~backend:b)
             plan.Planner.target_sets.(b))
      then ok := false
    done;
    !ok
  in
  {
    run =
      {
        completed = !completed;
        makespan;
        throughput =
          (if makespan > 0. then float_of_int !completed /. makespan else 0.);
        avg_response =
          (if !completed > 0 then !response_sum /. float_of_int !completed
           else 0.);
        max_response = !response_max;
        busy;
        utilization =
          Array.map (fun b -> if makespan > 0. then b /. makespan else 0.) busy;
        errors = !errors;
      };
    copied_mb = plan.Planner.copy_mb;
    replayed_mb = !replayed_mb;
    copy_done = schedule.Schedule.copy_done;
    drops_at = schedule.Schedule.drops_at;
    min_live_replicas =
      List.map
        (fun ((c : Query_class.t), m) -> (c.Query_class.id, !m))
        mins;
    target_deployed;
    responses = List.rev !responses;
  }
