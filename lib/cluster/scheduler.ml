module Allocation = Cdbs_core.Allocation
module Query_class = Cdbs_core.Query_class
module Fragment = Cdbs_core.Fragment
module Workload = Cdbs_core.Workload

type t = {
  alloc : Allocation.t;
  class_by_id : (string, Query_class.t) Hashtbl.t;
  free_at : float array;
  up : bool array;
  stale : bool array;
      (* up but catching up after a rejoin: takes updates (so the missed
         volume stops growing) yet serves no reads until caught up *)
  live : Fragment.Set.t array;
      (* fragments each physical node currently serves; in static mode this
         mirrors the allocation's placement *)
  dynamic : bool;
      (* dynamic mode routes purely by live fragment sets (the placement is
         in motion and assignment weights refer to the target) *)
}

let class_table alloc =
  let class_by_id = Hashtbl.create 32 in
  Array.iter
    (fun c -> Hashtbl.replace class_by_id c.Query_class.id c)
    (Allocation.classes alloc);
  class_by_id

let create alloc =
  let n = Allocation.num_backends alloc in
  {
    alloc;
    class_by_id = class_table alloc;
    free_at = Array.make n 0.;
    up = Array.make n true;
    stale = Array.make n false;
    live = Array.init n (Allocation.fragments_of alloc);
    dynamic = false;
  }

let create_dynamic alloc ~live =
  let n = Array.length live in
  if n = 0 then invalid_arg "Scheduler.create_dynamic: no nodes";
  {
    alloc;
    class_by_id = class_table alloc;
    free_at = Array.make n 0.;
    up = Array.make n true;
    stale = Array.make n false;
    live = Array.map (fun s -> s) live;
    dynamic = true;
  }

let num_nodes t = Array.length t.live
let live_fragments t ~backend = t.live.(backend)

let add_live t ~backend fragments =
  t.live.(backend) <- Fragment.Set.union t.live.(backend) fragments

let remove_live t ~backend fragments =
  t.live.(backend) <- Fragment.Set.diff t.live.(backend) fragments

let serves t b (c : Query_class.t) =
  Fragment.Set.subset c.Query_class.fragments t.live.(b)

(* A backend serves reads only when it is up AND caught up; a stale backend
   still applies updates so its catch-up backlog stops growing. *)
let read_capable t b = t.up.(b) && not t.stale.(b)

let live_replicas t c =
  let n = ref 0 in
  for b = 0 to num_nodes t - 1 do
    if read_capable t b && serves t b c then incr n
  done;
  !n

(* The schema records which backends a class was assigned to; the scheduler
   routes among those.  Backends that merely happen to hold the data (e.g.
   k-safety standby replicas) are used only when no assigned backend
   exists.  In dynamic mode the placement is mid-migration, so routing
   relies on the live fragment sets alone. *)
let eligible_for_read ?healthy t c =
  let all = List.init (num_nodes t) (fun b -> b) in
  let base =
    if t.dynamic then
      List.filter (fun b -> read_capable t b && serves t b c) all
    else
      let assigned =
        List.filter
          (fun b -> read_capable t b && Allocation.get_assign t.alloc b c > 0.)
          all
      in
      if assigned <> [] then assigned
      else
        List.filter
          (fun b -> read_capable t b && Allocation.holds t.alloc b c)
          all
  in
  match healthy with
  | None -> base
  | Some ok -> (
      (* Fail open: when every replica's breaker is open, serving from a
         suspect backend beats refusing the read outright. *)
      match List.filter ok base with [] -> base | filtered -> filtered)

let find_class t id = Hashtbl.find_opt t.class_by_id id

let targets_for_update t (c : Query_class.t) =
  List.filter
    (fun b ->
      t.up.(b)
      && not
           (Fragment.Set.is_empty
              (Fragment.Set.inter c.Query_class.fragments t.live.(b))))
    (List.init (num_nodes t) (fun b -> b))

let set_down t ~backend =
  t.up.(backend) <- false;
  t.stale.(backend) <- false

let set_up ?(stale = false) t ~backend =
  t.up.(backend) <- true;
  t.stale.(backend) <- stale

let set_stale t ~backend ~stale =
  if not t.up.(backend) then
    invalid_arg "Scheduler.set_stale: backend is down";
  t.stale.(backend) <- stale

let is_up t ~backend = t.up.(backend)
let is_stale t ~backend = t.stale.(backend)
let pending t ~backend ~now = max 0. (t.free_at.(backend) -. now)
let free_at t ~backend = t.free_at.(backend)
let book t ~backend ~finish = t.free_at.(backend) <- finish

(* Allocation-free equivalent of [eligible_for_read] + least-pending fold:
   one pass decides which base set applies (assigned vs holders) and
   whether the health filter leaves anyone (fail open if not), a second
   pass takes the first minimum-pending candidate.  [exclude] drops one
   backend from the final selection only — the base-set and fail-open
   decisions still see it, mirroring how the hedge path filtered the
   candidate list after [eligible_for_read]. *)
let best_read_target ?healthy ?(exclude = -1) t ~now (c : Query_class.t) =
  let n = num_nodes t in
  let in_base =
    if t.dynamic then fun b -> read_capable t b && serves t b c
    else begin
      let any_assigned = ref false in
      for b = 0 to n - 1 do
        if
          (not !any_assigned)
          && read_capable t b
          && Allocation.get_assign t.alloc b c > 0.
        then any_assigned := true
      done;
      if !any_assigned then fun b ->
        read_capable t b && Allocation.get_assign t.alloc b c > 0.
      else fun b -> read_capable t b && Allocation.holds t.alloc b c
    end
  in
  let candidate =
    match healthy with
    | None -> in_base
    | Some ok ->
        let any_healthy = ref false in
        for b = 0 to n - 1 do
          if (not !any_healthy) && in_base b && ok b then any_healthy := true
        done;
        (* Fail open: when every replica's breaker is open, serving from a
           suspect backend beats refusing the read outright. *)
        if !any_healthy then fun b -> in_base b && ok b else in_base
  in
  let best = ref (-1) and best_pending = ref infinity in
  for b = 0 to n - 1 do
    if b <> exclude && candidate b then begin
      let p = pending t ~backend:b ~now in
      if !best < 0 || p < !best_pending then begin
        best := b;
        best_pending := p
      end
    end
  done;
  if !best < 0 then None else Some !best

let route ?healthy t ~now (r : Request.t) =
  match Hashtbl.find_opt t.class_by_id r.Request.class_id with
  | None -> Error ("unknown query class " ^ r.Request.class_id)
  | Some c ->
      if r.Request.is_update then begin
        match targets_for_update t c with
        | [] -> Error ("update class " ^ c.Query_class.id ^ " has no replica")
        | targets -> Ok targets
      end
      else begin
        match eligible_for_read ?healthy t c with
        | [] -> Error ("read class " ^ c.Query_class.id ^ " is not served")
        | candidates ->
            (* Least pending request first. *)
            let best =
              List.fold_left
                (fun acc b ->
                  match acc with
                  | None -> Some b
                  | Some cur ->
                      if
                        pending t ~backend:b ~now
                        < pending t ~backend:cur ~now
                      then Some b
                      else acc)
                None candidates
            in
            Ok [ Option.get best ]
      end
