(** Least-pending-request-first scheduling (paper Sec. 2).

    The controller keeps a queue per backend.  A read goes to the eligible
    backend (one holding all of its class's data) with the least pending
    work; an update is enqueued on {e every} backend holding any of its
    referenced data (read-once/write-all). *)

type t

val create : Cdbs_core.Allocation.t -> t
(** Scheduler over the allocation's placement.  Eligibility derives from
    the fragment sets, so a zero-weight k-safety replica also serves its
    class. *)

val create_dynamic :
  Cdbs_core.Allocation.t -> live:Cdbs_core.Fragment.Set.t array -> t
(** Scheduler for a placement in motion (live migration): [live] lists the
    fragments each physical node serves {e right now} and may be longer
    than the allocation's backend count (decommissioning / fresh nodes).
    Routing uses the live sets only — the allocation supplies the query
    classes; its assignment weights describe the target, not the present,
    and are ignored.  Use {!add_live} / {!remove_live} at cutover and drop
    events. *)

val num_nodes : t -> int
(** Physical nodes under management ([= Array.length live]). *)

val live_fragments : t -> backend:int -> Cdbs_core.Fragment.Set.t
val add_live : t -> backend:int -> Cdbs_core.Fragment.Set.t -> unit
val remove_live : t -> backend:int -> Cdbs_core.Fragment.Set.t -> unit

val live_replicas : t -> Cdbs_core.Query_class.t -> int
(** Up, caught-up nodes whose live set contains every fragment of the
    class — the replicas a read can actually land on right now. *)

val eligible_for_read :
  ?healthy:(int -> bool) -> t -> Cdbs_core.Query_class.t -> int list
(** Read candidates for a class.  [healthy] is an optional routing filter
    (e.g. a circuit breaker's [allows]): candidates failing it are
    steered around — but if {e every} candidate fails it the unfiltered
    list is returned (fail open), since a slow replica still beats an
    unavailable answer.  Updates are never filtered. *)

val targets_for_update : t -> Cdbs_core.Query_class.t -> int list

val find_class : t -> string -> Cdbs_core.Query_class.t option
(** Indexed class lookup (the table {!route} itself routes through) —
    callers on a per-request hot path use this instead of scanning the
    allocation's class array. *)

val best_read_target :
  ?healthy:(int -> bool) ->
  ?exclude:int ->
  t ->
  now:float ->
  Cdbs_core.Query_class.t ->
  int option
(** The backend {!route} would pick for a read of this class — same base
    set, fail-open health filter and first-minimum-pending tie-break —
    computed in two indexed passes with no intermediate lists.  [exclude]
    removes one backend from the final selection only (for hedged second
    dispatches); the fail-open decision still counts it. *)

val route :
  ?healthy:(int -> bool) -> t -> now:float -> Request.t -> (int list, string) result
(** Backends that must process the request (singleton for reads).  Pending
    work bookkeeping is updated by {!book}.  [healthy] filters read
    candidates as in {!eligible_for_read}. *)

val book : t -> backend:int -> finish:float -> unit
(** Record that the backend's queue now drains at [finish]. *)

val pending : t -> backend:int -> now:float -> float
(** Remaining queued work (seconds) on the backend at time [now]. *)

val free_at : t -> backend:int -> float
(** Time at which the backend's queue is empty. *)

val set_down : t -> backend:int -> unit
(** Mark a backend as failed: it receives no further work.  Reads fall back
    to any surviving backend holding their class's data (k-safety standby
    replicas, Appendix C); updates skip the dead replica.  Clears any stale
    flag — a down backend is simply down. *)

val set_up : ?stale:bool -> t -> backend:int -> unit
(** Rejoin a backend (the dual of {!set_down}).  With [~stale:true] it
    rejoins in catch-up mode: it takes updates (so its replicas stop
    falling further behind) but serves no reads until {!set_stale} clears
    the flag — the crash/recover lifecycle's re-admission gate. *)

val set_stale : t -> backend:int -> stale:bool -> unit
(** Flip the catch-up flag of an up backend.
    @raise Invalid_argument when the backend is down. *)

val is_up : t -> backend:int -> bool

val is_stale : t -> backend:int -> bool
(** Up but still replaying missed updates: excluded from reads,
    included in update fan-out. *)
