(** Cluster execution simulator.

    Replaces the paper's physical 16-node cluster: requests are dispatched
    by the least-pending-first scheduler onto single-server FIFO backends
    whose service times come from {!Cost_model}.  Reads run on one backend;
    updates run on every backend holding the touched data (ROWA).

    Two drive modes:
    - {!run_batch} saturates the cluster with a fixed request list (all
      available immediately) and reports makespan-based throughput — the
      mode behind the throughput/speedup figures;
    - {!run_open} replays timestamped arrivals and reports response times —
      the mode behind the elastic-scaling experiment (Fig. 5). *)

type config = {
  cost : Cost_model.params;
  speeds : float array;
      (** per-backend speed relative to a reference node; [ [|1.;1.|] ] is
          a homogeneous 2-node cluster *)
  protocol : Protocol.t;
      (** how updates propagate to replicas (default {!Protocol.Rowa}) *)
}

val homogeneous_config :
  ?cost:Cost_model.params -> ?protocol:Protocol.t -> int -> config

type outcome = {
  completed : int;  (** requests fully processed *)
  makespan : float;  (** time the last backend went idle *)
  throughput : float;  (** completed / makespan *)
  avg_response : float;  (** mean request response time (completion - arrival) *)
  max_response : float;
  p50_response : float;  (** median response time (0 when none completed) *)
  p95_response : float;
  p99_response : float;  (** tail latency — what overload defenses target *)
  busy : float array;  (** per-backend busy seconds *)
  utilization : float array;  (** busy / makespan *)
  errors : int;  (** requests that could not be routed *)
}

val run_batch :
  config -> Cdbs_core.Allocation.t -> Request.t list -> outcome
(** All requests offered at time 0, dispatched in list order. *)

val run_open :
  config -> Cdbs_core.Allocation.t -> Request.t list -> outcome
(** Requests dispatched at their [arrival] timestamps.  An unsorted list is
    detected and stably sorted by arrival first — open-mode time never runs
    backwards regardless of caller ordering. *)

val class_mb : Cdbs_core.Allocation.t -> Request.t -> float
(** The megabytes a request's class scans (its fragment footprint, or the
    request's override). *)

(** {1 Fault injection} *)

type recovery = {
  rec_backend : int;
  crashed_at : float;
  recovered_at : float;  (** when the [Recover] event fired *)
  mutable caught_up_at : float;
      (** when the catch-up replay finished and reads were re-admitted;
          [nan] while pending (or forever, if the backend crashed again
          before finishing) *)
  replayed_mb : float;  (** missed update volume replayed at rejoin *)
}

type fault_outcome = {
  run : outcome;
      (** request-level outcome; [errors] counts aborted requests *)
  offered : int;  (** requests submitted *)
  availability : float;  (** completed / offered (1.0 when none offered) *)
  retried_requests : int;  (** distinct reads that needed at least one retry *)
  retries : int;  (** total retry attempts scheduled *)
  aborted : int;
      (** requests abandoned: retry budget exhausted, deadline passed, or
          (for updates) no live replica to commit on *)
  timeouts : int;  (** aborts caused by the per-request deadline *)
  shed : int;
      (** reads refused by admission control (a typed [Shed] outcome —
          included in [aborted], never updates) *)
  shed_updates : int;
      (** always 0: the engine never sheds updates; the field witnesses
          the ROWA-preservation invariant in reports *)
  hedged : int;  (** speculative second dispatches issued *)
  hedge_wins : int;  (** hedges that beat the primary leg *)
  breaker_trips : int;  (** circuit-breaker transitions into [Open] *)
  wasted_work : float;
      (** service seconds spent on doomed or losing work: reads served
          past their client's deadline and cancelled hedge legs *)
  offered_updates : int;  (** updates submitted *)
  completed_updates : int;  (** updates committed (ROWA on live replicas) *)
  cancelled_work : float;
      (** in-flight service seconds destroyed by crashes *)
  catch_up_mb : float;  (** total volume replayed across all rejoins *)
  recoveries : recovery list;  (** one per completed [Recover], in order *)
  downtime : float array;  (** per-backend seconds spent down *)
  max_concurrent_down : int;
  events : int;
      (** total events the clock processed (arrivals + faults + retries +
          hedges + catch-up completions) — the denominator of events/sec *)
  responses : (float * float) list;
      (** per completed request, [(original arrival, response)] in arrival
          order — responses of retried reads span the whole retry chain *)
}

val run_open_with_faults :
  ?policy:Cdbs_faults.Retry.policy ->
  ?rng:Cdbs_util.Rng.t ->
  ?resilience:Cdbs_resilience.Policy.t ->
  ?telemetry:Cdbs_telemetry.Sink.t ->
  ?monitor:Cdbs_analysis.Monitor.t ->
  ?topology:Cdbs_core.Topology.t ->
  ?partition_timeout:float ->
  config ->
  Cdbs_core.Allocation.t ->
  Request.t list ->
  faults:Cdbs_faults.Fault.schedule ->
  fault_outcome
(** Open-mode replay under a fault timeline, on a true event clock: fault
    events interleave with arrivals, retries, hedges and catch-up
    completions, and keep being applied after the last arrival (a late
    crash still cancels queued work).

    [Crash b] takes the backend out of service immediately: its in-flight
    and queued work is cancelled; cancelled reads are retried on surviving
    replicas under [policy] (bounded attempts, exponential backoff, a
    deadline measured from the original arrival); cancelled replica writes
    are owed at rejoin.  While down, the update volume touching its
    replicas accrues in a {!Cdbs_migration.Delta} journal (ROWA keeps
    committing on the survivors).  [Recover b] brings it back {e stale}:
    it takes updates but serves no reads until the missed volume has been
    replayed through the journal cost model.  [Slowdown] inflates the
    backend's service times by [factor] for [duration].

    [Partition] isolates its backends while their processes keep running:
    routing treats them as down, but in-flight reads {e time out} instead
    of failing fast — the retry fires [partition_timeout] seconds (default
    1.0) after the cut, on top of the usual backoff (slow failure, the
    defining difference from a crash).  When the partition heals, each
    isolated backend bumps its monotonic {e fencing epoch} (emitted as
    ["backend.heal"] with [epoch] and [replay_mb]) and rejoins fenced:
    stale, replaying the update volume it missed through the delta
    journal, serving no reads until the catch-up completes and
    ["backend.fence_lift"] announces the fence is gone.  A backend that
    missed nothing lifts its fence at the heal instant.  This is the
    split-brain guard: a minority that kept running through a
    live-migration cutover on the majority side can never serve stale
    reads after the heal.

    [ZoneOutage] is the correlated failure a domain-aware placement is
    built for: every backend of the zone crashes at the same instant
    (ordinary crash semantics, bracketed by ["zone.outage"] /
    ["zone.heal"] trace events) and recovers together.  Zone faults
    require [topology] to resolve membership; passing a schedule with a
    [ZoneOutage] but no [topology] fails validation.  [topology], when
    given, must cover exactly the allocation's backends.

    [rng] (seeded, deterministic) enables the retry policy's backoff
    jitter; without it backoffs are exact.

    [telemetry] attaches an observation sink: the run's latency
    distribution and headline counters land in its metrics registry, and
    the request/backend lifecycle (crashes, recoveries, catch-ups,
    slowdowns, retries, sheds, hedges, breaker transitions) is emitted
    as trace events stamped with the simulated clock.  Telemetry is
    strictly an observer — with or without a sink the outcome is
    bit-identical.

    [monitor] attaches a {!Cdbs_analysis.Monitor} for the duration of the
    run: a ["run.start"] event resets its per-run protocol state, every
    booking is announced as ["backend.serve"], retries carry the
    remaining deadline budget, and a ["run.summary"] event closes the run
    with the conservation counters.  When no [telemetry] sink is given
    the monitor gets a small private one (the subscription sees every
    event regardless of ring capacity).  A monitor the caller already
    attached to [telemetry] is not re-attached (and not detached at the
    end).  Under active debug invariants ({!Cdbs_core.Invariants}) the
    run {e fails loudly}: any error-severity violation raises [Failure]
    with the rendered report; otherwise violations accumulate for the
    caller to {!Cdbs_analysis.Monitor.report}.  Like telemetry, the
    monitor never changes outcomes.

    [resilience] wires the overload/gray-failure defenses into the run
    (all off by default, reproducing the legacy engine exactly):
    - {e admission control} bounds each backend's queue; past the
      depth/latency watermark a read is shed — oldest queued read first,
      else the newcomer ([shed] in the report; updates are never shed);
    - {e circuit breakers} track per-backend latency EWMA and error rate
      and steer read routing around slow-but-alive backends (fail-open
      when every replica is open; updates are never steered);
    - {e hedged reads} arm a speculative second dispatch when a read's
      expected completion exceeds the adaptive hedge delay; the first leg
      to finish wins and the loser's unserved tail is cancelled;
    - {e deadline budgets} give each read an end-to-end budget from its
      original arrival.  Retries stop when the budget is exhausted
      (replacing the fixed attempt count), hedges that cannot meet it are
      not dispatched, and — with admission control on — reads quoted past
      it are refused up front instead of being served to an absent
      client.  Without admission control the doomed work is still booked
      and surfaces as [wasted_work] (congestion collapse).  Updates are
      exempt from every defense.

    The schedule is validated first ({!Cdbs_faults.Fault.validate});
    @raise Invalid_argument on an ill-formed schedule. *)

val run_open_with_failures :
  config ->
  Cdbs_core.Allocation.t ->
  Request.t list ->
  failures:(float * int) list ->
  outcome
(** Legacy entry point: permanent failures only.  A thin wrapper over
    {!run_open_with_faults} with the default retry policy, so reads caught
    on a crashing backend fail over to surviving replicas — an adequately
    k-safe allocation (Appendix C) reports zero [errors].  Unlike the
    historical polling implementation, failures timed after the last
    arrival still cancel queued work. *)

(** {1 Live migration} *)

type migration_outcome = {
  run : outcome;  (** request-level outcome over the whole run *)
  copied_mb : float;  (** background copy volume (= the plan's transfer) *)
  replayed_mb : float;  (** delta-journal volume replayed at cutovers *)
  copy_done : float;  (** when the last copy finished *)
  drops_at : float;  (** when the contract barrier released the old copies *)
  min_live_replicas : (string * int) list;
      (** per query class, the minimum number of simultaneously live full
          replicas observed at any point of the run — the k-safety audit *)
  target_deployed : bool;
      (** every physical node's final live set equals the plan's target *)
  responses : (float * float) list;
      (** per completed request, [(arrival, response)] in arrival order —
          the raw material of the degradation timeline *)
}

val run_open_with_migration :
  ?copy_slowdown:float ->
  ?telemetry:Cdbs_telemetry.Sink.t ->
  ?monitor:Cdbs_analysis.Monitor.t ->
  config ->
  target:Cdbs_core.Allocation.t ->
  schedule:Cdbs_migration.Schedule.t ->
  Request.t list ->
  migration_outcome
(** Open-mode replay {e while} the schedule's rebalance executes in the
    background.  Routing follows the live fragment sets: nodes start with
    the plan's old placement, gain fragments at each copy's cutover (after
    replaying the deltas captured while the copy was on the wire) and shed
    the no-longer-needed copies at the final drop barrier.  Foreground
    service on a node actively copying (as source or destination) is
    inflated by [copy_slowdown] (default 0.25).  [config.speeds] must cover
    the plan's [num_physical] nodes.  Requests must reference classes of
    the [target] allocation's workload.

    [telemetry]/[monitor] mirror {!run_open_with_faults}: the run opens
    with ["run.start"], announces each class's expand-then-contract
    replica floor as ["migration.floor"], emits ["migration.live"] after
    every migration event so the monitor can audit that live replicas
    never drop below the floor, and fails loudly under active debug
    invariants. *)
