(** Cluster execution simulator.

    Replaces the paper's physical 16-node cluster: requests are dispatched
    by the least-pending-first scheduler onto single-server FIFO backends
    whose service times come from {!Cost_model}.  Reads run on one backend;
    updates run on every backend holding the touched data (ROWA).

    Two drive modes:
    - {!run_batch} saturates the cluster with a fixed request list (all
      available immediately) and reports makespan-based throughput — the
      mode behind the throughput/speedup figures;
    - {!run_open} replays timestamped arrivals and reports response times —
      the mode behind the elastic-scaling experiment (Fig. 5). *)

type config = {
  cost : Cost_model.params;
  speeds : float array;
      (** per-backend speed relative to a reference node; [ [|1.;1.|] ] is
          a homogeneous 2-node cluster *)
  protocol : Protocol.t;
      (** how updates propagate to replicas (default {!Protocol.Rowa}) *)
}

val homogeneous_config :
  ?cost:Cost_model.params -> ?protocol:Protocol.t -> int -> config

type outcome = {
  completed : int;  (** requests fully processed *)
  makespan : float;  (** time the last backend went idle *)
  throughput : float;  (** completed / makespan *)
  avg_response : float;  (** mean request response time (completion - arrival) *)
  max_response : float;
  busy : float array;  (** per-backend busy seconds *)
  utilization : float array;  (** busy / makespan *)
  errors : int;  (** requests that could not be routed *)
}

val run_batch :
  config -> Cdbs_core.Allocation.t -> Request.t list -> outcome
(** All requests offered at time 0, dispatched in list order. *)

val run_open :
  config -> Cdbs_core.Allocation.t -> Request.t list -> outcome
(** Requests dispatched at their [arrival] timestamps.  An unsorted list is
    detected and stably sorted by arrival first — open-mode time never runs
    backwards regardless of caller ordering. *)

val run_open_with_failures :
  config ->
  Cdbs_core.Allocation.t ->
  Request.t list ->
  failures:(float * int) list ->
  outcome
(** Like {!run_open}, but each [(time, backend)] failure takes the backend
    out of service from that time on.  Requests that no surviving backend
    can serve count as [errors] — zero for an adequately k-safe allocation
    (Appendix C). *)

val class_mb : Cdbs_core.Allocation.t -> Request.t -> float
(** The megabytes a request's class scans (its fragment footprint, or the
    request's override). *)

(** {1 Live migration} *)

type migration_outcome = {
  run : outcome;  (** request-level outcome over the whole run *)
  copied_mb : float;  (** background copy volume (= the plan's transfer) *)
  replayed_mb : float;  (** delta-journal volume replayed at cutovers *)
  copy_done : float;  (** when the last copy finished *)
  drops_at : float;  (** when the contract barrier released the old copies *)
  min_live_replicas : (string * int) list;
      (** per query class, the minimum number of simultaneously live full
          replicas observed at any point of the run — the k-safety audit *)
  target_deployed : bool;
      (** every physical node's final live set equals the plan's target *)
  responses : (float * float) list;
      (** per completed request, [(arrival, response)] in arrival order —
          the raw material of the degradation timeline *)
}

val run_open_with_migration :
  ?copy_slowdown:float ->
  config ->
  target:Cdbs_core.Allocation.t ->
  schedule:Cdbs_migration.Schedule.t ->
  Request.t list ->
  migration_outcome
(** Open-mode replay {e while} the schedule's rebalance executes in the
    background.  Routing follows the live fragment sets: nodes start with
    the plan's old placement, gain fragments at each copy's cutover (after
    replaying the deltas captured while the copy was on the wire) and shed
    the no-longer-needed copies at the final drop barrier.  Foreground
    service on a node actively copying (as source or destination) is
    inflated by [copy_slowdown] (default 0.25).  [config.speeds] must cover
    the plan's [num_physical] nodes.  Requests must reference classes of
    the [target] allocation's workload. *)
