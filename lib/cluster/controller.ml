module Schema = Cdbs_storage.Schema
module Database = Cdbs_storage.Database
module Executor = Cdbs_storage.Executor
module Datagen = Cdbs_storage.Datagen
module Analyze = Cdbs_sql.Analyze
module Journal = Cdbs_core.Journal
module Classification = Cdbs_core.Classification
module Fragment = Cdbs_core.Fragment
module Allocation = Cdbs_core.Allocation
module Memetic = Cdbs_core.Memetic
module Backend = Cdbs_core.Backend
module Physical = Cdbs_core.Physical
module Planner = Cdbs_migration.Planner
module Breaker = Cdbs_resilience.Breaker
module Workload = Cdbs_core.Workload
module Drift = Cdbs_control.Drift

type backend_state = {
  mutable db : Database.t;
  mutable pending_cost : float;  (** accumulated routed cost, for balance *)
  mutable up : bool;
      (* a down backend takes no traffic; its copy diverges and is rebuilt
         from the master on rejoin *)
}

(* One table copy in flight: a snapshot "ships" at the configured bandwidth
   while updates touching the table accumulate in the delta journal. *)
type copy_state = {
  cp_dest : int;
  cp_table : string;
  cp_size : float;  (** megabytes to ship *)
  staging : Database.t;  (** snapshot taken when the copy started *)
  mutable cp_shipped : float;
  mutable cp_deltas : string list;  (** captured SQL, newest first *)
}

type migration_state = {
  mig_target : Allocation.t;
  mig_plan : Planner.plan;
  mutable mig_pending : Planner.move list;  (** copies not yet started *)
  mutable mig_in_flight : copy_state option;
  mig_bandwidth : float;  (** megabytes shipped per submitted request *)
  mutable mig_shipped : float;
  mutable mig_done : int;
  mutable mig_replayed : int;  (** delta statements replayed at cutovers *)
}

type migration_progress = {
  tables_total : int;
  tables_done : int;
  mb_total : float;
  mb_shipped : float;
  delta_pending : int;
  replayed_statements : int;
}

type t = {
  schema : Schema.t;
  rows : (string * int) list;
  master : Database.t;  (** authoritative full copy, source for ETL *)
  stats_cache : (string, Cdbs_storage.Table_stats.t) Hashtbl.t;
  backends : backend_state array;
  journal : Journal.t;
  rng : Cdbs_util.Rng.t;
  mutable breaker : Breaker.t;
      (* per-backend circuit breaker over read routing; its clock is the
         controller's request counter, so cool-downs are measured in
         submitted statements *)
  mutable allocation : Allocation.t option;
  mutable migration : migration_state option;
  mutable processed : int;
  mutable total_cost : float;
  mutable clock : float;
  mutable tuner : Drift.t option;
      (* drift detector behind [autotune]; created on first use, its
         clock (like the breaker's) is the request counter *)
}

let create ~schema ~rows ~backends ~seed =
  if backends <= 0 then invalid_arg "Controller.create: need backends";
  let rng = Cdbs_util.Rng.create seed in
  let master = Database.create schema in
  Datagen.populate rng master ~rows_per_table:rows;
  let mk () =
    let db = Database.create schema in
    List.iter
      (fun tbl ->
        match Database.copy_table_into ~src:master ~dst:db tbl.Schema.tbl_name with
        | Ok _ -> ()
        | Error e -> invalid_arg ("Controller.create: " ^ e))
      schema;
    { db; pending_cost = 0.; up = true }
  in
  {
    schema;
    rows;
    master;
    stats_cache = Hashtbl.create 8;
    backends = Array.init backends (fun _ -> mk ());
    journal = Journal.create ();
    rng;
    breaker = Breaker.create backends;
    allocation = None;
    migration = None;
    processed = 0;
    total_cost = 0.;
    clock = 0.;
    tuner = None;
  }

(* Deterministic cost estimate, the paper's "cost estimation from the
   query optimizer" alternative to measured execution times: per referenced
   table, the estimated scan bytes under the statement's predicate
   (selectivity from cached table statistics). *)
let table_stats t name =
  match Hashtbl.find_opt t.stats_cache name with
  | Some st -> st
  | None -> (
      match Database.table t.master name with
      | None -> { Cdbs_storage.Table_stats.rows = 0; bytes = 0; columns = [] }
      | Some tbl ->
          let st = Cdbs_storage.Table_stats.collect tbl in
          Hashtbl.replace t.stats_cache name st;
          st)

let where_of = function
  | Cdbs_sql.Ast.Select { where; joins = []; _ } -> where
  | Cdbs_sql.Ast.Update { where; _ } | Cdbs_sql.Ast.Delete { where; _ } ->
      where
  | _ -> None

let cost_of_statement t stmt (fp : Analyze.footprint) =
  let where = where_of stmt in
  List.fold_left
    (fun acc tbl ->
      acc
      +. Cdbs_storage.Table_stats.estimate_scan_bytes (table_stats t tbl)
           where
         /. 1048576.)
    0.001 fp.Analyze.tables

let holds_tables st tables =
  List.for_all (fun tbl -> Database.table st.db tbl <> None) tables

(* ------------------------------------------------------------------ *)
(* Live migration machinery (used by submit; entry points further down) *)
(* ------------------------------------------------------------------ *)

let table_of_move (m : Planner.move) =
  match m.Planner.fragment.Fragment.kind with
  | Fragment.Table name -> name
  | Fragment.Column { table; _ } | Fragment.Range { table; _ } -> table

(* Cut over the in-flight copy: replay its captured deltas on the staged
   snapshot, then swap the staged table into the destination's catalog. *)
let cutover t (mig : migration_state) (cp : copy_state) =
  List.iter
    (fun sql ->
      match Cdbs_sql.Parser.parse sql with
      | exception Cdbs_sql.Parser.Parse_error _ -> ()
      | stmt ->
          ignore (Executor.execute cp.staging stmt);
          mig.mig_replayed <- mig.mig_replayed + 1)
    (List.rev cp.cp_deltas);
  (match
     Database.install_table ~src:cp.staging
       ~dst:t.backends.(cp.cp_dest).db cp.cp_table
   with
  | Ok _ -> ()
  | Error e -> invalid_arg ("Controller.cutover: " ^ e));
  mig.mig_done <- mig.mig_done + 1;
  mig.mig_in_flight <- None

(* Contract phase: every copy has cut over, so dropping the surplus copies
   can no longer strand a query class without a live replica. *)
let finish_migration t (mig : migration_state) =
  List.iter
    (fun (d : Planner.drop) ->
      match d.Planner.victim.Fragment.kind with
      | Fragment.Table name ->
          Database.drop_table t.backends.(d.Planner.at_backend).db name
      | Fragment.Column { table; _ } | Fragment.Range { table; _ } ->
          Database.drop_table t.backends.(d.Planner.at_backend).db table)
    mig.mig_plan.Planner.drops;
  t.allocation <- Some mig.mig_target;
  t.migration <- None

(* Ship [budget] megabytes of copy work.  Leftover budget flows into the
   next queued copy; snapshots are taken lazily when a copy starts. *)
let advance_migration t ~budget =
  match t.migration with
  | None -> ()
  | Some mig ->
      let budget = ref budget in
      let continue_ = ref true in
      while !continue_ do
        (match mig.mig_in_flight with
        | None -> (
            match mig.mig_pending with
            | [] ->
                finish_migration t mig;
                continue_ := false
            | mv :: rest ->
                mig.mig_pending <- rest;
                let table = table_of_move mv in
                let staging =
                  Database.create_partial t.schema ~tables:[ table ]
                in
                (match
                   Database.copy_table_into ~src:t.master ~dst:staging table
                 with
                | Ok _ -> ()
                | Error e ->
                    invalid_arg ("Controller.advance_migration: " ^ e));
                mig.mig_in_flight <-
                  Some
                    {
                      cp_dest = mv.Planner.dest;
                      cp_table = table;
                      cp_size = mv.Planner.size;
                      staging;
                      cp_shipped = 0.;
                      cp_deltas = [];
                    })
        | Some cp ->
            let room = cp.cp_size -. cp.cp_shipped in
            if !budget >= room then begin
              budget := !budget -. room;
              cp.cp_shipped <- cp.cp_size;
              mig.mig_shipped <- mig.mig_shipped +. room;
              cutover t mig cp
            end
            else begin
              cp.cp_shipped <- cp.cp_shipped +. !budget;
              mig.mig_shipped <- mig.mig_shipped +. !budget;
              budget := 0.;
              continue_ := false
            end)
      done

let submit t sql =
  match Cdbs_sql.Parser.parse sql with
  | exception Cdbs_sql.Parser.Parse_error m -> Error ("parse error: " ^ m)
  | stmt -> (
      let fp =
        Analyze.footprint_of_statement ~schema:(Schema.to_assoc t.schema) stmt
      in
      let cost = cost_of_statement t stmt fp in
      t.clock <- t.clock +. 1.;
      Journal.record_at t.journal ~at:t.clock ~sql ~cost;
      t.processed <- t.processed + 1;
      t.total_cost <- t.total_cost +. cost;
      (* The background copier ships its per-request budget: the rebalance
         makes progress exactly while the system keeps serving. *)
      (match t.migration with
      | Some mig -> advance_migration t ~budget:mig.mig_bandwidth
      | None -> ());
      if fp.Analyze.is_update then begin
        (* Updated tables get fresh statistics on next use. *)
        List.iter (Hashtbl.remove t.stats_cache) fp.Analyze.tables;
        (* An update hitting a table whose snapshot is on the wire goes to
           the delta journal and is replayed before that copy cuts over. *)
        (match t.migration with
        | Some { mig_in_flight = Some cp; _ }
          when List.mem cp.cp_table fp.Analyze.tables ->
            cp.cp_deltas <- sql :: cp.cp_deltas
        | _ -> ());
        (* ROWA: run on the master and every up backend holding the table.
           Down backends miss the write and are rebuilt from the master on
           rejoin. *)
        let result = Executor.execute t.master stmt in
        Array.iter
          (fun st ->
            if st.up && holds_tables st fp.Analyze.tables then begin
              st.pending_cost <- st.pending_cost +. cost;
              ignore (Executor.execute st.db stmt)
            end)
          t.backends;
        result
      end
      else begin
        (* Least pending eligible backend, down backends excluded.  The
           circuit breaker then steers around slow-but-alive backends:
           candidates whose breaker is open are skipped unless every
           candidate's is (fail open — a suspect replica still beats
           refusing the read). *)
        let pick ~use_breaker =
          let best = ref None in
          Array.iteri
            (fun i st ->
              if
                st.up
                && holds_tables st fp.Analyze.tables
                && ((not use_breaker)
                   || Breaker.allows t.breaker ~backend:i ~now:t.clock)
              then
                match !best with
                | None -> best := Some i
                | Some j ->
                    if st.pending_cost < t.backends.(j).pending_cost then
                      best := Some i)
            t.backends;
          !best
        in
        let best =
          match pick ~use_breaker:true with
          | Some _ as b -> b
          | None -> pick ~use_breaker:false
        in
        match best with
        | None -> Error "no live backend holds the referenced tables"
        | Some i -> (
            let st = t.backends.(i) in
            st.pending_cost <- st.pending_cost +. cost;
            match Executor.execute st.db stmt with
            | Ok _ as ok ->
                (* The estimated cost stands in for measured latency. *)
                Breaker.record_success t.breaker ~backend:i ~now:t.clock
                  ~latency:cost;
                ok
            | Error _ as err ->
                Breaker.record_failure t.breaker ~backend:i ~now:t.clock;
                err)
      end)

let journal t = t.journal
let allocation t = t.allocation
let breaker t = t.breaker

let set_breaker_config t config =
  t.breaker <- Breaker.create ~config (Array.length t.backends)

let backend_tables t =
  Array.to_list
    (Array.map (fun st -> Database.table_names st.db) t.backends)

let stats t = (t.processed, t.total_cost)

(* Classify the history and compute the next allocation, plus the fragment
   sets describing what each backend stores right now — shared by the
   offline rebuild and the live migration paths. *)
let classified_workload t =
  let size_of = Classification.default_sizes ~schema:t.schema ~rows:t.rows in
  Classification.classify ~schema:t.schema ~size_of Classification.By_table
    t.journal

let compute_target t ~iterations =
  if Journal.length t.journal = 0 then Error "empty query history"
  else begin
    let size_of =
      Classification.default_sizes ~schema:t.schema ~rows:t.rows
    in
    let workload = classified_workload t in
    let backends = Backend.homogeneous (Array.length t.backends) in
    let params =
      { Memetic.default_params with Memetic.iterations }
    in
    let alloc = Memetic.allocate ~params ~rng:t.rng workload backends in
    let current_sets =
      Array.to_list
        (Array.map
           (fun st ->
             List.fold_left
               (fun acc name ->
                 let kind = Fragment.Table name in
                 Fragment.Set.add { Fragment.kind; size = size_of kind } acc)
               Fragment.Set.empty
               (Database.table_names st.db))
           t.backends)
    in
    Ok (alloc, current_sets)
  end

(* Debug-mode assertion: before deploying, run the full static verifier
   over the target allocation (and, for live paths, the migration plan).
   No-op unless Cdbs_core.Invariants checks are active. *)
let assert_target ~context alloc =
  if Cdbs_core.Invariants.active () then
    Cdbs_analysis.Check_allocation.check_exn ~context alloc

let assert_plan ~context alloc plan =
  if Cdbs_core.Invariants.active () then
    Cdbs_analysis.Check_migration.check_plan_exn ~context
      ~workload:(Allocation.workload alloc) plan

let reallocate t ?(iterations = 40) () =
  if t.migration <> None then Error "a live migration is in progress"
  else
  match compute_target t ~iterations with
  | Error e -> Error e
  | Ok (alloc, current_sets) ->
    assert_target ~context:"Controller.reallocate" alloc;
    let plan = Physical.plan_scaled ~old_fragments:current_sets alloc in
    (* Rebuild each physical node with exactly the tables of the new
       backend mapped onto it. *)
    Array.iteri
      (fun v _u ->
        let wanted =
          Fragment.Set.fold
            (fun f acc ->
              match f.Fragment.kind with
              | Fragment.Table name -> name :: acc
              | Fragment.Column { table; _ } | Fragment.Range { table; _ } ->
                  table :: acc)
            (Allocation.fragments_of alloc v) []
          |> List.sort_uniq String.compare
        in
        let db = Database.create_partial t.schema ~tables:wanted in
        List.iter
          (fun tbl ->
            match Database.copy_table_into ~src:t.master ~dst:db tbl with
            | Ok _ -> ()
            | Error e -> invalid_arg ("Controller.reallocate: " ^ e))
          wanted;
        t.backends.(v).db <- db;
        t.backends.(v).pending_cost <- 0.)
      plan.Physical.mapping;
    t.allocation <- Some alloc;
    Ok plan.Physical.transfer

(* ------------------------------------------------------------------ *)
(* Live migration entry points                                         *)
(* ------------------------------------------------------------------ *)

let begin_reallocate_live t ?(iterations = 40) ?(bandwidth_mb_per_request = 5.)
    () =
  if t.migration <> None then Error "a live migration is already in progress"
  else if bandwidth_mb_per_request <= 0. then
    Error "bandwidth must be positive"
  else
    match compute_target t ~iterations with
    | Error e -> Error e
    | Ok (alloc, current_sets) ->
        assert_target ~context:"Controller.begin_reallocate_live" alloc;
        let plan = Planner.make ~old_fragments:current_sets alloc in
        assert_plan ~context:"Controller.begin_reallocate_live" alloc plan;
        t.migration <-
          Some
            {
              mig_target = alloc;
              mig_plan = plan;
              mig_pending = plan.Planner.moves;
              mig_in_flight = None;
              mig_bandwidth = bandwidth_mb_per_request;
              mig_shipped = 0.;
              mig_done = 0;
              mig_replayed = 0;
            };
        (* A placement already matching the target completes immediately. *)
        if Planner.is_noop plan then
          advance_migration t ~budget:bandwidth_mb_per_request;
        Ok plan

let migration_progress t =
  match t.migration with
  | None -> None
  | Some mig ->
      Some
        {
          tables_total = List.length mig.mig_plan.Planner.moves;
          tables_done = mig.mig_done;
          mb_total = mig.mig_plan.Planner.copy_mb;
          mb_shipped = mig.mig_shipped;
          delta_pending =
            (match mig.mig_in_flight with
            | Some cp -> List.length cp.cp_deltas
            | None -> 0);
          replayed_statements = mig.mig_replayed;
        }

let is_migrating t = t.migration <> None

let drive_migration t ?budget_mb () =
  match t.migration with
  | None -> ()
  | Some mig ->
      let budget =
        match budget_mb with
        | Some b -> b
        | None ->
            (* Run the rebalance to completion. *)
            mig.mig_plan.Planner.copy_mb +. 1.
      in
      advance_migration t ~budget

let reallocate_live t ?iterations ?bandwidth_mb_per_request () =
  match begin_reallocate_live t ?iterations ?bandwidth_mb_per_request () with
  | Error e -> Error e
  | Ok plan ->
      while t.migration <> None do
        drive_migration t ()
      done;
      Ok plan.Planner.copy_mb

(* ------------------------------------------------------------------ *)
(* Self-tuning: measured journal mix vs the deployed assumption         *)
(* ------------------------------------------------------------------ *)

type autotune_outcome =
  | Tuned of { score : float; shipped_mb : float }
  | No_drift of float
  | Insufficient_history
  | Migration_in_progress
  | Tune_failed of string

let read_mix (w : Workload.t) =
  List.map
    (fun (c : Cdbs_core.Query_class.t) -> (c.Cdbs_core.Query_class.id, c.Cdbs_core.Query_class.weight))
    w.Workload.reads

let autotune t ?(drift = Drift.default) ?(iterations = 40)
    ?(bandwidth_mb_per_request = 5.) ?(min_requests = 50) () =
  let tuner =
    match t.tuner with
    | Some d when Drift.config d = drift -> d
    | _ ->
        let d = Drift.create drift in
        t.tuner <- Some d;
        d
  in
  if t.migration <> None then Migration_in_progress
  else if Journal.length t.journal < max 1 min_requests then
    Insufficient_history
  else begin
    let measured = read_mix (classified_workload t) in
    let score =
      match t.allocation with
      | None ->
          (* Still fully replicated: no assumed mix has ever been
             deployed, so any measurable history is full drift. *)
          infinity
      | Some a -> Drift.score ~assumed:(read_mix (Allocation.workload a)) ~measured
    in
    if not (Drift.update tuner ~now:t.clock ~score) then
      No_drift score
    else
      match reallocate_live t ~iterations ~bandwidth_mb_per_request () with
      | Error e ->
          Drift.action_done tuner ~now:t.clock;
          Tune_failed e
      | Ok shipped_mb ->
          Drift.action_done tuner ~now:t.clock;
          Tuned { score; shipped_mb }
  end

(* ------------------------------------------------------------------ *)
(* Crash / rejoin lifecycle and k-safety self-repair                   *)
(* ------------------------------------------------------------------ *)

let check_backend t ~backend ~fn =
  if backend < 0 || backend >= Array.length t.backends then
    invalid_arg (fn ^ ": backend out of range")

let is_backend_up t ~backend =
  check_backend t ~backend ~fn:"Controller.is_backend_up";
  t.backends.(backend).up

let failed_backends t =
  let acc = ref [] in
  Array.iteri (fun i st -> if not st.up then acc := i :: !acc) t.backends;
  List.rev !acc

let fail_backend t ~backend =
  check_backend t ~backend ~fn:"Controller.fail_backend";
  t.backends.(backend).up <- false;
  t.backends.(backend).pending_cost <- 0.

(* Fragment placement is table-granular at the physical layer; the tables a
   backend should host under the current allocation (all of them while
   fully replicated). *)
let wanted_tables t ~backend =
  match t.allocation with
  | None -> List.map (fun tbl -> tbl.Schema.tbl_name) t.schema
  | Some alloc ->
      Fragment.Set.fold
        (fun f acc ->
          match f.Fragment.kind with
          | Fragment.Table name -> name :: acc
          | Fragment.Column { table; _ } | Fragment.Range { table; _ } ->
              table :: acc)
        (Allocation.fragments_of alloc backend)
        []
      |> List.sort_uniq String.compare

let table_mb t name =
  float_of_int (table_stats t name).Cdbs_storage.Table_stats.bytes /. 1048576.

(* Install fresh copies of [tables] from the master into the backend,
   returning the megabytes shipped.  install_table replaces a present
   (possibly diverged) copy and creates an absent one. *)
let ship_tables t ~backend tables =
  let st = t.backends.(backend) in
  List.fold_left
    (fun acc tbl ->
      match Database.install_table ~src:t.master ~dst:st.db tbl with
      | Ok _ -> acc +. table_mb t tbl
      | Error e -> invalid_arg ("Controller.ship_tables: " ^ e))
    0. tables

let rejoin_backend t ~backend =
  check_backend t ~backend ~fn:"Controller.rejoin_backend";
  let st = t.backends.(backend) in
  if st.up then 0.
  else begin
    (* Catch-up before re-admission: every hosted table is re-shipped from
       the authoritative master, folding in all updates missed while down
       — and any copy obligations a repair assigned to this backend. *)
    let shipped = ship_tables t ~backend (wanted_tables t ~backend) in
    st.pending_cost <- 0.;
    st.up <- true;
    (* The rebuilt copy starts with a clean bill of health: stale latency
       statistics from before the crash would only delay re-admission. *)
    Breaker.force_close t.breaker ~backend;
    shipped
  end

let effective_k t =
  let failed = failed_backends t in
  match t.allocation with
  | None -> Array.length t.backends - List.length failed - 1
  | Some alloc -> Cdbs_core.Ksafety.effective_k ~failed alloc

let repair ?topology t ~k =
  let healthy () =
    effective_k t >= k
    && (* Replica count alone is not the whole target: with a topology the
          survivors must also span enough fault domains. *)
    match (topology, t.allocation) with
    | Some topo, Some alloc ->
        Cdbs_core.Ksafety.spread_ok ~failed:(failed_backends t)
          ~topology:topo ~k alloc
    | _ -> true
  in
  if t.migration <> None then Error "a live migration is in progress"
  else if healthy () then Ok 0.
  else
    match t.allocation with
    | None ->
        (* Fully replicated: every up backend already holds everything, so
           effective k is bounded by the surviving node count alone. *)
        Error "not enough live backends for the requested k"
    | Some alloc -> (
        let failed = failed_backends t in
        match Cdbs_core.Ksafety.repair ?topology ~k ~failed alloc with
        | exception Invalid_argument m -> Error m
        | gained ->
            assert_target ~context:"Controller.repair" alloc;
            (* Materialize the plan on the survivors; obligations of down
               backends are honored by {!rejoin_backend}'s full rebuild. *)
            let shipped = ref 0. in
            Array.iteri
              (fun b frags ->
                if t.backends.(b).up && not (Fragment.Set.is_empty frags)
                then begin
                  let tables =
                    Fragment.Set.fold
                      (fun f acc ->
                        match f.Fragment.kind with
                        | Fragment.Table name -> name :: acc
                        | Fragment.Column { table; _ }
                        | Fragment.Range { table; _ } ->
                            table :: acc)
                      frags []
                    |> List.sort_uniq String.compare
                    |> List.filter (fun tbl ->
                           Database.table t.backends.(b).db tbl = None)
                  in
                  shipped := !shipped +. ship_tables t ~backend:b tables
                end)
              gained;
            Ok !shipped)
