module Trace = Cdbs_workloads.Trace
module Spec = Cdbs_workloads.Spec
module Simulator = Cdbs_cluster.Simulator
module Request = Cdbs_cluster.Request
module Greedy = Cdbs_core.Greedy
module Backend = Cdbs_core.Backend
module Allocation = Cdbs_core.Allocation
module Physical = Cdbs_core.Physical
module Fragment = Cdbs_core.Fragment
module Planner = Cdbs_migration.Planner
module Schedule = Cdbs_migration.Schedule

type window_report = {
  hour : float;
  rate : float;
  nodes : int;
  avg_response_scaled : float;
  avg_response_static : float;
  transfer_mb : float;
  migrating : bool;
}

type summary = {
  windows : window_report list;
  avg_response : float;
  max_response_window : float;
  reallocations : int;
  total_transfer_mb : float;
}

let allocation_for ~hour nodes =
  let workload = Trace.workload_at ~hour in
  Greedy.allocate workload (Backend.homogeneous nodes)

let fragment_sets alloc =
  List.init (Allocation.num_backends alloc) (Allocation.fragments_of alloc)

let simulate_days ?(window_minutes = 10.) ?(scale = 40.) ?policy
    ?(predictive = false) ?(capacity_per_node = 60.) ?(days = 1)
    ?(live = false) ?(bandwidth_mb_s = 20.) ~rng () =
  let policy =
    match policy with Some p -> p | None -> Policy.create ()
  in
  let static_nodes = 6 in
  (* The static comparison system is the classic fully replicated cluster
     at maximum size: robust to any mix shift, expensive in storage. *)
  let static_alloc =
    Cdbs_core.Baselines.full_replication (Trace.workload_at ~hour:12.)
      (Backend.homogeneous static_nodes)
  in
  (* Midnight still sees ~100 scaled queries/s; start with two backends. *)
  let nodes = ref 2 in
  let alloc = ref (allocation_for ~hour:0. !nodes) in
  (* In live mode a scale decision is deployed by a throttled background
     rebalance that executes during the following window. *)
  let pending_migration = ref None in
  let reallocations = ref 0 in
  let total_transfer = ref 0. in
  let windows = ref [] in
  let steps = int_of_float (24. *. 60. /. window_minutes) in
  let forecast = Forecast.create ~windows_per_day:steps () in
  let summaries = ref [] in
  for _day = 1 to days do
  let response_sum = ref 0. and response_n = ref 0 in
  let max_window = ref 0. in
  windows := [];
  reallocations := 0;
  total_transfer := 0.;
  for w = 0 to steps - 1 do
    let hour = float_of_int w *. window_minutes /. 60. in
    let rate = Trace.rate_per_10min ~hour *. scale in
    let n_requests = int_of_float (rate *. window_minutes /. 10.) in
    let specs = Spec.requests ~rng ~n:n_requests (Trace.specs_at ~hour) in
    let window_seconds = window_minutes *. 60. in
    let requests =
      List.map
        (fun (r : Request.t) ->
          { r with Request.arrival = Cdbs_util.Rng.float rng window_seconds })
        specs
      |> List.sort (fun (a : Request.t) b ->
             Stdlib.compare a.Request.arrival b.Request.arrival)
    in
    let run alloc_now count =
      let config = Simulator.homogeneous_config count in
      Simulator.run_open config alloc_now requests
    in
    let scaled_outcome, migrating =
      match !pending_migration with
      | Some schedule ->
          pending_migration := None;
          let m = schedule.Schedule.plan.Planner.num_physical in
          let config = Simulator.homogeneous_config m in
          let mo =
            Simulator.run_open_with_migration config ~target:!alloc ~schedule
              requests
          in
          (mo.Simulator.run, true)
      | None -> (run !alloc !nodes, false)
    in
    let static_outcome = run static_alloc static_nodes in
    let utilization =
      Cdbs_util.Stats.mean (Array.to_list scaled_outcome.Simulator.utilization)
      *. (scaled_outcome.Simulator.makespan /. window_seconds)
    in
    (* [rate] is in requests per 10 minutes; the profile stores it as is. *)
    Forecast.observe forecast ~window:w ~rate;
    let transfer = ref 0. in
    let reactive =
      Policy.decide policy ~current:!nodes
        ~avg_response:scaled_outcome.Simulator.avg_response ~utilization
    in
    (* Predictive target for the upcoming window, once the profile knows
       it; the reactive decision still wins when it asks for more. *)
    let nodes_for rate =
      (* 25% headroom over the predicted rate keeps queueing in check. *)
      let qps = rate /. 600. in
      max 1 (min 6 (int_of_float (ceil (qps *. 1.25 /. capacity_per_node))))
    in
    (* Provision for the worst of the next three windows: a single-window
       horizon thrashes on every ceil boundary of the rising ramp. *)
    let proactive =
      if not predictive then None
      else
        let horizon =
          List.filter_map
            (fun ahead -> Forecast.predict forecast ~window:(w + ahead))
            [ 1; 2; 3 ]
        in
        match horizon with
        | [] -> None
        | rates -> Some (nodes_for (List.fold_left max 0. rates))
    in
    let target =
      match (reactive, proactive) with
      | Policy.Scale_to t, Some p -> Some (max t p)
      | Policy.Scale_to t, None -> Some t
      | Policy.Stay, Some p when p > !nodes -> Some p
      | Policy.Stay, Some p when p < !nodes - 1 ->
          (* Step down conservatively, one node at a time, only when the
             whole horizon is known. *)
          if Forecast.coverage forecast >= 1. then Some (!nodes - 1) else None
      | Policy.Stay, _ -> None
    in
    (match target with
    | Some target when target <> !nodes ->
        let next = allocation_for ~hour target in
        let old_fragments = fragment_sets !alloc in
        if live then begin
          let plan = Planner.make ~old_fragments next in
          let schedule = Schedule.make ~bandwidth:bandwidth_mb_s plan in
          pending_migration := Some schedule;
          transfer := plan.Planner.copy_mb;
          total_transfer := !total_transfer +. plan.Planner.copy_mb
        end
        else begin
          let plan = Physical.plan_scaled ~old_fragments next in
          transfer := plan.Physical.transfer;
          total_transfer := !total_transfer +. plan.Physical.transfer
        end;
        incr reallocations;
        nodes := target;
        alloc := next
    | _ -> ());
    response_sum :=
      !response_sum
      +. (scaled_outcome.Simulator.avg_response
         *. float_of_int scaled_outcome.Simulator.completed);
    response_n := !response_n + scaled_outcome.Simulator.completed;
    if scaled_outcome.Simulator.avg_response > !max_window then
      max_window := scaled_outcome.Simulator.avg_response;
    windows :=
      {
        hour;
        rate;
        nodes = !nodes;
        avg_response_scaled = scaled_outcome.Simulator.avg_response;
        avg_response_static = static_outcome.Simulator.avg_response;
        transfer_mb = !transfer;
        migrating;
      }
      :: !windows
  done;
  summaries :=
    {
      windows = List.rev !windows;
      avg_response =
        (if !response_n > 0 then !response_sum /. float_of_int !response_n
         else 0.);
      max_response_window = !max_window;
      reallocations = !reallocations;
      total_transfer_mb = !total_transfer;
    }
    :: !summaries
  done;
  List.rev !summaries

let simulate_day ?window_minutes ?scale ?policy ~rng () =
  match simulate_days ?window_minutes ?scale ?policy ~days:1 ~rng () with
  | [ summary ] -> summary
  | _ -> assert false
