(** Autonomic elastic CDBS over the e-learning day trace (paper Sec. 5).

    Replays the 24-hour request profile in measurement windows; after each
    window the policy may change the backend count, in which case a new
    allocation is computed for the new cluster size and deployed via
    Hungarian matching (scale-out pads with empty virtual backends,
    scale-in decommissions the matched leftovers).  A static cluster of the
    maximum size runs alongside as the paper's comparison baseline. *)

type window_report = {
  hour : float;  (** window start, hours since midnight *)
  rate : float;  (** offered requests per 10 minutes (scaled trace) *)
  nodes : int;  (** active backends during the window *)
  avg_response_scaled : float;  (** seconds, autonomic cluster *)
  avg_response_static : float;  (** seconds, static max-size cluster *)
  transfer_mb : float;  (** data shipped by a reallocation in this window *)
  migrating : bool;
      (** a live rebalance executed in the background during this window *)
}

type summary = {
  windows : window_report list;
  avg_response : float;  (** day-average response time, autonomic *)
  max_response_window : float;  (** worst windowed average *)
  reallocations : int;
  total_transfer_mb : float;
}

val simulate_day :
  ?window_minutes:float ->
  ?scale:float ->
  ?policy:Policy.t ->
  rng:Cdbs_util.Rng.t ->
  unit ->
  summary
(** Defaults: 10-minute windows, trace scaled by 40 (the paper's factor,
    max load ≈ 250–300 queries/s), default {!Policy.create}. *)

val simulate_days :
  ?window_minutes:float ->
  ?scale:float ->
  ?policy:Policy.t ->
  ?predictive:bool ->
  ?capacity_per_node:float ->
  ?days:int ->
  ?live:bool ->
  ?bandwidth_mb_s:float ->
  rng:Cdbs_util.Rng.t ->
  unit ->
  summary list
(** Multi-day run, one summary per day.  With [predictive] (default false)
    a {!Forecast} learns the daily rate profile; once a window-of-day has
    been observed, the cluster is sized for the {e predicted} rate of the
    upcoming window ([capacity_per_node] queries/s per backend at the
    target utilization, default 60), with the reactive policy still acting
    as a safety net.  Day 2 onward thus avoids the ramp-chasing spikes of
    purely reactive scaling (paper Sec. 5, periodic workloads).

    With [live] (default false) scale decisions are deployed by the live
    migration subsystem: instead of an instantaneous swap, the copy work
    runs as a [bandwidth_mb_s]-throttled (default 20 MB/s) background
    rebalance during the following window, whose response-time degradation
    shows up in that window's report ([migrating] is set). *)
