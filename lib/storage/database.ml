type t = {
  schema : Schema.t;
  tables : (string, Table.t) Hashtbl.t;
}

let create_partial (schema : Schema.t) ~tables =
  let t = { schema; tables = Hashtbl.create 16 } in
  List.iter
    (fun name ->
      match Schema.find_table schema name with
      | Some tbl_schema ->
          Hashtbl.replace t.tables name (Table.create tbl_schema)
      | None -> invalid_arg ("Database.create_partial: unknown table " ^ name))
    tables;
  t

let create schema =
  create_partial schema ~tables:(List.map (fun tb -> tb.Schema.tbl_name) schema)

let schema t = t.schema
let table t name = Hashtbl.find_opt t.tables name

let table_exn t name =
  match table t name with
  | Some tbl -> tbl
  | None -> invalid_arg ("Database.table_exn: no table " ^ name)

let table_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.tables []
  |> List.sort String.compare

let byte_size t =
  Hashtbl.fold (fun _ tbl acc -> acc + Table.byte_size tbl) t.tables 0

let insert t name row =
  match table t name with
  | None -> Error ("insert: no table " ^ name)
  | Some tbl -> Table.insert tbl row

let install_table ~src ~dst name =
  match table src name with
  | None -> Error ("install: source lacks table " ^ name)
  | Some s -> (
      match Schema.find_table dst.schema name with
      | None -> Error ("install: table not in destination schema " ^ name)
      | Some tbl_schema ->
          let fresh = Table.create tbl_schema in
          let count = ref 0 in
          let error = ref None in
          Table.iter
            (fun row ->
              if !error = None then
                match Table.insert fresh (Array.copy row) with
                | Ok () -> incr count
                | Error e -> error := Some e)
            s;
          (match !error with
          | Some e -> Error e
          | None ->
              Hashtbl.replace dst.tables name fresh;
              Ok !count))

let drop_table t name = Hashtbl.remove t.tables name

let copy_table_into ~src ~dst name =
  match (table src name, table dst name) with
  | None, _ -> Error ("copy: source lacks table " ^ name)
  | _, None -> Error ("copy: destination lacks table " ^ name)
  | Some s, Some d ->
      let count = ref 0 in
      let error = ref None in
      Table.iter
        (fun row ->
          if !error = None then
            match Table.insert d (Array.copy row) with
            | Ok () -> incr count
            | Error e -> error := Some e)
        s;
      (match !error with Some e -> Error e | None -> Ok !count)
