(** Catalog of tables forming one backend's local database. *)

type t

val create : Schema.t -> t
(** Instantiate empty tables for every table of the schema. *)

val create_partial : Schema.t -> tables:string list -> t
(** Instantiate only the listed tables — a partially replicated backend. *)

val schema : t -> Schema.t
val table : t -> string -> Table.t option
val table_exn : t -> string -> Table.t
val table_names : t -> string list
val byte_size : t -> int

val insert : t -> string -> Value.t array -> (unit, string) result

val copy_table_into : src:t -> dst:t -> string -> (int, string) result
(** Bulk-copy a table's rows from [src] to [dst] (the ETL step of physical
    allocation); returns the number of rows copied. *)

val install_table : src:t -> dst:t -> string -> (int, string) result
(** Atomically replace (or create) [dst]'s table with a copy of [src]'s —
    the cutover step of a live migration: the staged snapshot-plus-deltas
    becomes the serving copy in one catalog swap.  Unlike
    {!copy_table_into}, the destination need not already host the table,
    only know it in its schema. *)

val drop_table : t -> string -> unit
(** Remove the table from the catalog (the contract phase of a live
    migration).  A no-op when the database does not host it. *)
