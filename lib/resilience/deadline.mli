(** End-to-end deadline budgets.

    A request enters the system with a fixed time budget measured from its
    arrival.  Everything that happens on its behalf — queueing, service,
    retry backoffs, hedged attempts — spends the same budget, so failover
    stops when the budget is exhausted rather than after a fixed attempt
    count.  Clients are assumed to abandon the request at its deadline:
    work completing later is wasted capacity, and the defended dispatch
    path refuses it up front. *)

type policy = { budget : float  (** seconds of end-to-end budget *) }

val default : policy
(** 5 s — generous next to the simulator's sub-second service times. *)

val make : budget:float -> policy
(** @raise Invalid_argument when [budget <= 0]. *)

type t
(** A started deadline: an absolute give-up instant. *)

val start : policy -> arrival:float -> t
val unlimited : arrival:float -> t
(** A deadline that never expires (the undefended/legacy behaviour). *)

val arrival : t -> float
val deadline : t -> float
(** The absolute instant the client abandons the request. *)

val remaining : t -> now:float -> float
(** Budget left at [now]; negative once exhausted. *)

val exhausted : t -> now:float -> bool

val allows : t -> now:float -> cost:float -> bool
(** Whether work costing [cost] seconds started at [now] would still finish
    within the budget. *)
