type state = Closed | Open | Half_open

let state_label = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half_open"

type config = {
  ewma_alpha : float;
  latency_factor : float;
  min_samples : int;
  error_window : int;
  error_threshold : float;
  cool_down : float;
  probes : int;
}

let default_config =
  {
    ewma_alpha = 0.2;
    latency_factor = 2.;
    min_samples = 20;
    error_window = 20;
    error_threshold = 0.5;
    cool_down = 10.;
    probes = 3;
  }

let make_config ?(ewma_alpha = default_config.ewma_alpha)
    ?(latency_factor = default_config.latency_factor)
    ?(min_samples = default_config.min_samples)
    ?(error_window = default_config.error_window)
    ?(error_threshold = default_config.error_threshold)
    ?(cool_down = default_config.cool_down) ?(probes = default_config.probes)
    () =
  if ewma_alpha <= 0. || ewma_alpha > 1. then
    invalid_arg "Breaker.make_config: ewma_alpha must be in (0, 1]";
  if latency_factor < 1. then
    invalid_arg "Breaker.make_config: latency_factor < 1";
  if min_samples < 1 then invalid_arg "Breaker.make_config: min_samples < 1";
  if error_window < 1 then invalid_arg "Breaker.make_config: error_window < 1";
  if error_threshold <= 0. || error_threshold > 1. then
    invalid_arg "Breaker.make_config: error_threshold must be in (0, 1]";
  if cool_down <= 0. then invalid_arg "Breaker.make_config: cool_down <= 0";
  if probes < 1 then invalid_arg "Breaker.make_config: probes < 1";
  {
    ewma_alpha;
    latency_factor;
    min_samples;
    error_window;
    error_threshold;
    cool_down;
    probes;
  }

type backend = {
  mutable st : state;
  mutable ewma : float;
  mutable samples : int;
  window : bool array; (* true = failure *)
  mutable w_len : int;
  mutable w_pos : int;
  mutable w_failures : int;
  mutable opened_at : float;
  mutable probe_successes : int;
}

type t = {
  config : config;
  backends : backend array;
  mutable trips : int;
  mutable hook : (backend:int -> state -> unit) option;
}

let fresh cfg =
  {
    st = Closed;
    ewma = 0.;
    samples = 0;
    window = Array.make cfg.error_window false;
    w_len = 0;
    w_pos = 0;
    w_failures = 0;
    opened_at = neg_infinity;
    probe_successes = 0;
  }

let create ?(config = default_config) ?on_transition n =
  if n < 1 then invalid_arg "Breaker.create: need at least one backend";
  {
    config;
    backends = Array.init n (fun _ -> fresh config);
    trips = 0;
    hook = on_transition;
  }

let set_on_transition t hook = t.hook <- hook

let notify t ~backend st =
  match t.hook with None -> () | Some f -> f ~backend st

let config t = t.config
let num_backends t = Array.length t.backends
let get t b = t.backends.(b)

let reset_stats be =
  be.ewma <- 0.;
  be.samples <- 0;
  be.w_len <- 0;
  be.w_pos <- 0;
  be.w_failures <- 0;
  Array.fill be.window 0 (Array.length be.window) false

let trip t ~backend ~now =
  let be = get t backend in
  if be.st <> Open then begin
    t.trips <- t.trips + 1;
    notify t ~backend Open
  end;
  be.st <- Open;
  be.opened_at <- now;
  be.probe_successes <- 0

let state t ~backend = (get t backend).st

let allows t ~backend ~now =
  let be = get t backend in
  match be.st with
  | Closed | Half_open -> true
  | Open ->
      if now -. be.opened_at >= t.config.cool_down then begin
        be.st <- Half_open;
        be.probe_successes <- 0;
        notify t ~backend Half_open;
        true
      end
      else false

(* Median EWMA over peers that have at least one sample. *)
let peer_median t b =
  let xs =
    Array.to_list t.backends
    |> List.filteri (fun i _ -> i <> b)
    |> List.filter_map (fun be ->
           if be.samples > 0 then Some be.ewma else None)
  in
  match List.sort compare xs with
  | [] -> None
  | sorted ->
      let n = List.length sorted in
      let a = List.nth sorted ((n - 1) / 2) and b = List.nth sorted (n / 2) in
      Some ((a +. b) /. 2.)

let push_window cfg be ~failure =
  if be.w_len = cfg.error_window then begin
    if be.window.(be.w_pos) then be.w_failures <- be.w_failures - 1
  end
  else be.w_len <- be.w_len + 1;
  be.window.(be.w_pos) <- failure;
  if failure then be.w_failures <- be.w_failures + 1;
  be.w_pos <- (be.w_pos + 1) mod cfg.error_window

let error_tripped cfg be =
  be.w_len >= cfg.error_window
  && float_of_int be.w_failures /. float_of_int be.w_len >= cfg.error_threshold

let latency_tripped t b be =
  be.samples >= t.config.min_samples
  &&
  match peer_median t b with
  | Some m -> m > 0. && be.ewma > t.config.latency_factor *. m
  | None -> false

let record_success t ~backend ~now ~latency =
  let cfg = t.config in
  let be = get t backend in
  be.ewma <-
    (if be.samples = 0 then latency
     else (cfg.ewma_alpha *. latency) +. ((1. -. cfg.ewma_alpha) *. be.ewma));
  be.samples <- be.samples + 1;
  push_window cfg be ~failure:false;
  match be.st with
  | Open -> () (* stray completion of work booked before the trip *)
  | Half_open ->
      (* A probe is judged by its own latency, not the (stale) EWMA. *)
      let probe_slow =
        match peer_median t backend with
        | Some m -> m > 0. && latency > cfg.latency_factor *. m
        | None -> false
      in
      if probe_slow then trip t ~backend ~now
      else begin
        be.probe_successes <- be.probe_successes + 1;
        if be.probe_successes >= cfg.probes then begin
          be.st <- Closed;
          reset_stats be;
          notify t ~backend Closed
        end
      end
  | Closed -> if latency_tripped t backend be then trip t ~backend ~now

let record_failure t ~backend ~now =
  let cfg = t.config in
  let be = get t backend in
  push_window cfg be ~failure:true;
  match be.st with
  | Open -> ()
  | Half_open -> trip t ~backend ~now
  | Closed -> if error_tripped cfg be then trip t ~backend ~now

let force_open t ~backend ~now = trip t ~backend ~now

let force_close t ~backend =
  let be = get t backend in
  if be.st <> Closed then notify t ~backend Closed;
  be.st <- Closed;
  be.probe_successes <- 0;
  reset_stats be

let ewma t ~backend =
  let be = get t backend in
  if be.samples = 0 then None else Some be.ewma

let trips t = t.trips
