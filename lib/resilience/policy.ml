type t = {
  admission : Admission.policy option;
  breaker : Breaker.config option;
  hedge : Hedge.policy option;
  deadline : Deadline.policy option;
}

let off = { admission = None; breaker = None; hedge = None; deadline = None }

let default =
  {
    admission = Some Admission.default;
    breaker = Some Breaker.default_config;
    hedge = Some Hedge.default;
    deadline = Some Deadline.default;
  }

let make ?admission ?breaker ?hedge ?deadline () =
  { admission; breaker; hedge; deadline }

let pp ppf t =
  let flag name = function Some _ -> name | None -> "-" ^ name in
  Fmt.pf ppf "resilience{%s %s %s %s}"
    (flag "admission" t.admission)
    (flag "breaker" t.breaker) (flag "hedge" t.hedge)
    (flag "deadline" t.deadline)
