(** Per-backend health tracking and circuit breakers.

    Crash-stop faults already remove a backend from the scheduler's live
    set, but a {e gray} failure — a backend that is slow yet alive — is
    invisible to routing.  The breaker watches two signals per backend:

    - a latency EWMA compared against the median EWMA of its peers
      (a backend whose smoothed latency exceeds [latency_factor] times the
      peer median is tripped), and
    - an error-rate sliding window (a window with at least
      [error_threshold] failures trips the breaker).

    The state machine is the classic three-state breaker:

    {v
        Closed --(latency or error trip)--> Open
        Open --(cool_down elapsed)--> Half_open
        Half_open --(probes consecutive healthy completions)--> Closed
        Half_open --(slow or failed probe)--> Open
    v}

    [allows] is the routing-side query: it is read-only apart from the
    time-based Open -> Half_open transition, so schedulers may probe every
    candidate during selection without corrupting probe accounting.
    Probe accounting happens only in [record_success]/[record_failure].

    Closing a breaker resets the backend's latency statistics so a stale
    EWMA from the bad period cannot immediately re-trip it. *)

type state = Closed | Open | Half_open

val state_label : state -> string
(** ["closed"], ["open"] or ["half_open"] — the stable wire names used in
    trace events and verified by the protocol monitor. *)

type config = {
  ewma_alpha : float;  (** smoothing factor in (0, 1] for the latency EWMA *)
  latency_factor : float;
      (** trip when own EWMA exceeds this multiple of the peer median *)
  min_samples : int;  (** samples required before the latency trip can fire *)
  error_window : int;  (** size of the per-backend outcome window *)
  error_threshold : float;
      (** failure fraction in a full window that trips the breaker *)
  cool_down : float;  (** time (clock units) spent Open before probing *)
  probes : int;  (** consecutive healthy completions to close from Half_open *)
}

val default_config : config
val make_config :
  ?ewma_alpha:float ->
  ?latency_factor:float ->
  ?min_samples:int ->
  ?error_window:int ->
  ?error_threshold:float ->
  ?cool_down:float ->
  ?probes:int ->
  unit ->
  config
(** @raise Invalid_argument on out-of-range parameters. *)

type t

val create :
  ?config:config -> ?on_transition:(backend:int -> state -> unit) -> int -> t
(** [create n] tracks [n] backends, all Closed.  [on_transition] is
    invoked at every state change with the backend and its {e new} state
    — the observation hook telemetry hangs breaker-transition trace
    events on.  It must not call back into the breaker. *)

val set_on_transition : t -> (backend:int -> state -> unit) option -> unit
(** Install or remove the transition hook after creation. *)

val config : t -> config
val num_backends : t -> int

val state : t -> backend:int -> state
(** Raw state, without the time-based Open -> Half_open transition. *)

val allows : t -> backend:int -> now:float -> bool
(** Whether routing may send a request to [backend] at [now].  An Open
    breaker whose cool-down has elapsed transitions to Half_open and
    admits the probe. *)

val record_success : t -> backend:int -> now:float -> latency:float -> unit
(** Feed a completed request's latency.  May trip a Closed breaker (EWMA
    vs. peers) or advance/abort a Half_open probe sequence: a probe is
    healthy when its own latency is within [latency_factor] times the peer
    median. *)

val record_failure : t -> backend:int -> now:float -> unit
(** Feed a failed request.  May trip via the error window; any failure in
    Half_open reopens immediately. *)

val force_open : t -> backend:int -> now:float -> unit
(** Operator override: trip regardless of statistics. *)

val force_close : t -> backend:int -> unit
(** Operator override: close and reset the backend's statistics. *)

val ewma : t -> backend:int -> float option
(** Current latency EWMA; [None] before the first sample. *)

val trips : t -> int
(** Total transitions into Open since [create]. *)
