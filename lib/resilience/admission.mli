(** Per-backend admission control with priority-aware load shedding.

    Each backend has a bounded queue: at most [max_depth] requests in
    flight, and at most [max_pending] seconds of queueing delay ahead of a
    newcomer.  Past either watermark the backend is overloaded and a read
    must be shed.  Updates are {e never} shed — ROWA correctness requires
    every replica of a written partition to apply every update.

    The decision here is pure; the engine that owns the queues implements
    the shed-oldest-first eviction (the read that has waited longest is
    the one most likely past its deadline, so it is evicted to admit
    fresher work). *)

type policy = {
  max_depth : int;  (** maximum requests in flight per backend *)
  max_pending : float;  (** maximum queueing delay (seconds) per backend *)
}

val default : policy
(** depth 64, pending watermark 1 s. *)

val unbounded : policy
(** Never sheds — the legacy behaviour. *)

val make : ?max_depth:int -> ?max_pending:float -> unit -> policy
(** @raise Invalid_argument when [max_depth < 1] or [max_pending <= 0]. *)

type decision = Admit | Shed

val decide : policy -> depth:int -> pending:float -> is_update:bool -> decision
(** [decide p ~depth ~pending ~is_update] — [depth] is the number of
    requests already in flight on the backend and [pending] the queueing
    delay a newcomer would see.  Updates are always admitted. *)

val pp_decision : Format.formatter -> decision -> unit
