type policy = {
  percentile : float;
  min_delay : float;
  min_observations : int;
  window : int;
}

let default =
  { percentile = 95.; min_delay = 0.05; min_observations = 20; window = 256 }

let make ?(percentile = default.percentile) ?(min_delay = default.min_delay)
    ?(min_observations = default.min_observations) ?(window = default.window)
    () =
  if percentile <= 0. || percentile > 100. then
    invalid_arg "Hedge.make: percentile must be in (0, 100]";
  if min_delay <= 0. then invalid_arg "Hedge.make: min_delay <= 0";
  if min_observations < 1 then invalid_arg "Hedge.make: min_observations < 1";
  if window < min_observations then
    invalid_arg "Hedge.make: window < min_observations";
  { percentile; min_delay; min_observations; window }

type t = {
  policy : policy;
  buf : float array;
  mutable len : int;
  mutable pos : int;
}

let create policy =
  { policy; buf = Array.make policy.window 0.; len = 0; pos = 0 }

let policy t = t.policy

let observe t latency =
  t.buf.(t.pos) <- latency;
  t.pos <- (t.pos + 1) mod t.policy.window;
  if t.len < t.policy.window then t.len <- t.len + 1

let observations t = t.len

let delay t =
  if t.len < t.policy.min_observations then t.policy.min_delay
  else
    let xs = Array.to_list (Array.sub t.buf 0 t.len) in
    max t.policy.min_delay (Cdbs_util.Stats.percentile t.policy.percentile xs)
