type policy = {
  percentile : float;
  min_delay : float;
  min_observations : int;
  window : int;
}

let default =
  { percentile = 95.; min_delay = 0.05; min_observations = 20; window = 256 }

let make ?(percentile = default.percentile) ?(min_delay = default.min_delay)
    ?(min_observations = default.min_observations) ?(window = default.window)
    () =
  if percentile <= 0. || percentile > 100. then
    invalid_arg "Hedge.make: percentile must be in (0, 100]";
  if min_delay <= 0. then invalid_arg "Hedge.make: min_delay <= 0";
  if min_observations < 1 then invalid_arg "Hedge.make: min_observations < 1";
  if window < min_observations then
    invalid_arg "Hedge.make: window < min_observations";
  { percentile; min_delay; min_observations; window }

module Histogram = Cdbs_telemetry.Histogram

(* Two rotating histogram windows (current + previous) instead of a raw
   sample reservoir: [merged] is kept equal to their sum at all times, so
   [observe] is O(1) and [delay] is a single bucket walk — no per-call
   sorting, and the tracked population stays bounded between [window] and
   [2 * window] recent latencies. *)
type t = {
  policy : policy;
  mutable cur : Histogram.t;
  mutable prev : Histogram.t;
  merged : Histogram.t;
}

let create policy =
  {
    policy;
    cur = Histogram.create ();
    prev = Histogram.create ();
    merged = Histogram.create ();
  }

let policy t = t.policy

let observe t latency =
  Histogram.record t.cur latency;
  Histogram.record t.merged latency;
  if Histogram.count t.cur >= t.policy.window then begin
    let old = t.prev in
    Histogram.reset old;
    t.prev <- t.cur;
    t.cur <- old;
    Histogram.reset t.merged;
    Histogram.merge_into t.merged ~from:t.prev
  end

let observations t = Histogram.count t.merged

let delay t =
  if observations t < t.policy.min_observations then t.policy.min_delay
  else
    max t.policy.min_delay (Histogram.percentile t.merged t.policy.percentile)
