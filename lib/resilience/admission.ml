type policy = { max_depth : int; max_pending : float }

let default = { max_depth = 64; max_pending = 1. }
let unbounded = { max_depth = max_int; max_pending = infinity }

let make ?(max_depth = default.max_depth) ?(max_pending = default.max_pending)
    () =
  if max_depth < 1 then invalid_arg "Admission.make: max_depth < 1";
  if max_pending <= 0. then invalid_arg "Admission.make: max_pending <= 0";
  { max_depth; max_pending }

type decision = Admit | Shed

let decide p ~depth ~pending ~is_update =
  if is_update then Admit
  else if depth >= p.max_depth || pending > p.max_pending then Shed
  else Admit

let pp_decision ppf = function
  | Admit -> Fmt.string ppf "admit"
  | Shed -> Fmt.string ppf "shed"
