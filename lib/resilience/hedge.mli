(** Hedged reads ("The Tail at Scale").

    A read whose expected completion time exceeds the hedge delay gets a
    speculative second dispatch to the next-best replica; the first
    completion wins and the loser is cancelled on the event clock.  The
    hedge delay adapts to the observed read-latency distribution: it is
    the configured percentile of a sliding reservoir of recent read
    latencies, floored at [min_delay] so a cold tracker never hedges
    everything. *)

type policy = {
  percentile : float;  (** latency percentile that sets the hedge delay *)
  min_delay : float;  (** floor for the hedge delay (seconds) *)
  min_observations : int;
      (** reservoir size required before the percentile is trusted *)
  window : int;  (** reservoir capacity (recent read latencies) *)
}

val default : policy
(** p95 delay, 50 ms floor, 20 observations, 256-slot reservoir. *)

val make :
  ?percentile:float ->
  ?min_delay:float ->
  ?min_observations:int ->
  ?window:int ->
  unit ->
  policy
(** @raise Invalid_argument on out-of-range parameters. *)

type t
(** A latency tracker (mutable sliding reservoir). *)

val create : policy -> t
val policy : t -> policy

val observe : t -> float -> unit
(** Record a completed read latency. *)

val observations : t -> int
(** Number of latencies currently in the reservoir. *)

val delay : t -> float
(** Current hedge delay: [max min_delay (percentile of reservoir)] once
    [min_observations] latencies are present, else [min_delay]. *)
