(** Hedged reads ("The Tail at Scale").

    A read whose expected completion time exceeds the hedge delay gets a
    speculative second dispatch to the next-best replica; the first
    completion wins and the loser is cancelled on the event clock.  The
    hedge delay adapts to the observed read-latency distribution: it is
    the configured percentile of the recent read latencies, floored at
    [min_delay] so a cold tracker never hedges everything.

    Latencies are tracked in two rotating {!Cdbs_telemetry.Histogram}
    windows (current + previous), so [observe] is O(1), [delay] needs no
    sorting, and the tracked population stays bounded between [window]
    and [2 * window] recent observations. *)

type policy = {
  percentile : float;  (** latency percentile that sets the hedge delay *)
  min_delay : float;  (** floor for the hedge delay (seconds) *)
  min_observations : int;
      (** observations required before the percentile is trusted *)
  window : int;  (** rotation size of the latency windows *)
}

val default : policy
(** p95 delay, 50 ms floor, 20 observations, 256-slot reservoir. *)

val make :
  ?percentile:float ->
  ?min_delay:float ->
  ?min_observations:int ->
  ?window:int ->
  unit ->
  policy
(** @raise Invalid_argument on out-of-range parameters. *)

type t
(** A latency tracker (mutable rotating histogram windows). *)

val create : policy -> t
val policy : t -> policy

val observe : t -> float -> unit
(** Record a completed read latency. *)

val observations : t -> int
(** Number of latencies currently tracked (bounded by [2 * window]). *)

val delay : t -> float
(** Current hedge delay: [max min_delay (percentile of the tracked
    latencies)] once [min_observations] latencies are present, else
    [min_delay]. *)
