(** The resilience policy bundle handed to the simulator/controller.

    Each defense is independently optional so experiments can isolate its
    contribution; [off] disables everything (legacy behaviour) and
    [default] enables all four with library defaults. *)

type t = {
  admission : Admission.policy option;
  breaker : Breaker.config option;
  hedge : Hedge.policy option;
  deadline : Deadline.policy option;
}

val off : t
val default : t

val make :
  ?admission:Admission.policy ->
  ?breaker:Breaker.config ->
  ?hedge:Hedge.policy ->
  ?deadline:Deadline.policy ->
  unit ->
  t

val pp : Format.formatter -> t -> unit
(** One-line summary of which defenses are on. *)
