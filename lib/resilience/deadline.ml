type policy = { budget : float }

let default = { budget = 5. }

let make ~budget =
  if budget <= 0. then invalid_arg "Deadline.make: budget <= 0";
  { budget }

type t = { arrival : float; deadline : float }

let start p ~arrival = { arrival; deadline = arrival +. p.budget }
let unlimited ~arrival = { arrival; deadline = infinity }
let arrival t = t.arrival
let deadline t = t.deadline
let remaining t ~now = t.deadline -. now
let exhausted t ~now = now >= t.deadline
let allows t ~now ~cost = now +. cost <= t.deadline
