(** A telemetry sink bundles a metrics registry with a trace ring.

    Instrumented code takes a [Sink.t option]; passing [None] keeps the
    instrumented path free of telemetry work, so legacy behaviour (and
    bit-identical outputs) are preserved when observation is off.  The
    [c]/[h]/[ev] helpers make call sites one-liners that are no-ops on
    [None]. *)

type t = { metrics : Metrics.t; trace : Trace.t }

val create : ?capacity:int -> unit -> t
(** Fresh sink; [capacity] bounds the trace ring (default 4096). *)

val c : t option -> string -> unit
(** Increment a named counter (no-op on [None]). *)

val cn : t option -> string -> int -> unit
(** Add [n] to a named counter (no-op on [None]). *)

val h : t option -> string -> float -> unit
(** Record into a named histogram (no-op on [None]). *)

val ev : t option -> at:float -> string -> (string * Trace.value) list -> unit
(** Emit a trace event (no-op on [None]). *)
