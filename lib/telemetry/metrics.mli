(** Metrics registry: named counters, gauges and histograms.

    A registry is the per-run (or per-subsystem) bag of instruments.
    Instruments are interned by name — asking twice for the same name
    returns the same instrument, so instrumentation sites don't need to
    thread instrument handles around.  Enumeration is deterministic
    (sorted by name) so renderings are stable across runs. *)

type counter
type gauge

type t

val create : unit -> t

val counter : t -> string -> counter
(** Intern a counter (starts at 0). *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val gauge : t -> string -> gauge
(** Intern a gauge (starts at 0). *)

val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram : t -> ?min_value:float -> ?per_decade:int -> string -> Histogram.t
(** Intern a histogram.  The optional parameters apply only on first
    creation; later lookups return the existing instrument as is. *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val gauges : t -> (string * float) list
val histograms : t -> (string * Histogram.t) list

val find_counter : t -> string -> int option
val find_histogram : t -> string -> Histogram.t option

val pp : Format.formatter -> t -> unit
(** Text dump: one instrument per line, sorted by name. *)

val to_json : t -> string
(** Deterministic JSON object
    [{"counters":{...},"gauges":{...},"histograms":{...}}] with per-
    histogram count/mean/p50/p95/p99/max summaries. *)
