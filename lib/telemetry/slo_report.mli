(** SLO report: the service-level summary of a run.

    One record gathers what an operator would put on a dashboard after a
    day in production — availability, latency percentiles, shed rate,
    wasted work, bytes moved by migrations, per-backend utilization —
    with text and JSON renderers, and a [gate] that turns threshold
    violations into a failing exit code in CI. *)

type t = {
  duration_s : float;        (** simulated time covered *)
  offered : int;             (** requests offered *)
  completed : int;           (** requests that finished in time *)
  shed : int;                (** refused by admission/breaker/deadline *)
  failed : int;              (** aborted for any other reason *)
  availability : float;      (** completed / offered *)
  p50_s : float;
  p95_s : float;
  p99_s : float;
  mean_s : float;
  shed_rate : float;         (** shed / offered *)
  wasted_work_s : float;     (** service seconds spent on discarded work
                                 (hedge losers, doomed reads) *)
  retries : int;
  hedges : int;
  bytes_moved_mb : float;    (** migration copy traffic *)
  migrations : int;          (** migration plans executed *)
  faults_injected : int;
  trace_dropped : int;
      (** trace-ring events evicted by overflow during the run — nonzero
          means the retained trace is a suffix, not the whole story *)
  reallocations : int;
      (** drift-triggered live reallocations the control loop executed *)
  rollbacks : int;
      (** reallocations undone by the canary guardrail (a subset of
          [reallocations]) *)
  drift_score : float;
      (** peak divergence between assumed and measured class mix observed
          over the run (0 when no estimator was attached) *)
  utilization : (int * float) list;
      (** per-backend busy fraction, sorted by backend id *)
}

val availability_of : offered:int -> completed:int -> float
(** [completed / offered]; 1.0 when nothing was offered. *)

val of_histogram :
  duration_s:float ->
  offered:int ->
  completed:int ->
  shed:int ->
  failed:int ->
  wasted_work_s:float ->
  retries:int ->
  hedges:int ->
  bytes_moved_mb:float ->
  migrations:int ->
  faults_injected:int ->
  ?trace_dropped:int ->
  ?reallocations:int ->
  ?rollbacks:int ->
  ?drift_score:float ->
  utilization:(int * float) list ->
  Histogram.t ->
  t
(** Build a report, deriving availability, shed rate and the latency
    fields (p50/p95/p99/mean) from the histogram.  [trace_dropped]
    (default 0) surfaces {!Trace.dropped} of the run's sink;
    [reallocations]/[rollbacks]/[drift_score] (defaults 0/0/0.) surface
    the control loop's activity when one drove the run. *)

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable rendering. *)

val to_json : t -> string
(** Deterministic single-line JSON object. *)

(** {1 Gating} *)

type gate = {
  min_availability : float option;
  max_p99_s : float option;
  max_shed_rate : float option;
}

val gate : ?min_availability:float -> ?max_p99_s:float -> ?max_shed_rate:float
  -> unit -> gate

val check : gate -> t -> string list
(** Human-readable violation messages; empty means the report passes. *)
