type t = {
  min_value : float;
  per_decade : int;
  mutable counts : int array;  (* grown on demand as the range widens *)
  mutable underflow : int;
  mutable total : int;
  mutable sum : float;
  mutable min_seen : float;
  mutable max_seen : float;
}

let create ?(min_value = 1e-6) ?(per_decade = 90) () =
  if min_value <= 0. then invalid_arg "Histogram.create: min_value <= 0";
  if per_decade < 1 then invalid_arg "Histogram.create: per_decade < 1";
  {
    min_value;
    per_decade;
    counts = Array.make 64 0;
    underflow = 0;
    total = 0;
    sum = 0.;
    min_seen = infinity;
    max_seen = neg_infinity;
  }

let min_value t = t.min_value
let per_decade t = t.per_decade
let count t = t.total
let underflow t = t.underflow
let sum t = t.sum
let mean t = if t.total = 0 then 0. else t.sum /. float_of_int t.total
let min_recorded t = if t.total = 0 then 0. else t.min_seen
let max_recorded t = if t.total = 0 then 0. else t.max_seen

let index_of t v =
  (* v >= min_value here *)
  int_of_float
    (floor (log10 (v /. t.min_value) *. float_of_int t.per_decade))

let bucket_lower t i =
  if i < 0 then 0.
  else t.min_value *. (10. ** (float_of_int i /. float_of_int t.per_decade))

(* Geometric midpoint of bucket [i]: sqrt(lower * upper), i.e. the bucket
   boundary formula evaluated at i + 1/2. *)
let bucket_mid t i =
  t.min_value
  *. (10. ** ((float_of_int i +. 0.5) /. float_of_int t.per_decade))

let ensure_capacity t i =
  let cap = Array.length t.counts in
  if i >= cap then begin
    let cap' = ref (2 * cap) in
    while i >= !cap' do
      cap' := 2 * !cap'
    done;
    let counts = Array.make !cap' 0 in
    Array.blit t.counts 0 counts 0 cap;
    t.counts <- counts
  end

let record_n t v ~n =
  if n < 0 then invalid_arg "Histogram.record_n: n < 0";
  if n > 0 then begin
    if v < t.min_value then t.underflow <- t.underflow + n
    else begin
      let i = index_of t v in
      ensure_capacity t i;
      t.counts.(i) <- t.counts.(i) + n
    end;
    t.total <- t.total + n;
    t.sum <- t.sum +. (v *. float_of_int n);
    if v < t.min_seen then t.min_seen <- v;
    if v > t.max_seen then t.max_seen <- v
  end

let record t v = record_n t v ~n:1

let quantile t q =
  if q < 0. || q > 1. then invalid_arg "Histogram.quantile: q outside [0,1]";
  if t.total = 0 then 0.
  else begin
    (* Nearest rank, matching Stats.percentile: the ceil(q*n)-th smallest
       observation, clamped into [1, n]. *)
    let rank =
      max 1 (min t.total (int_of_float (ceil (q *. float_of_int t.total))))
    in
    let estimate =
      if rank <= t.underflow then t.min_value
      else begin
        let remaining = ref (rank - t.underflow) in
        let i = ref 0 in
        let n = Array.length t.counts in
        while !i < n && !remaining > t.counts.(!i) do
          remaining := !remaining - t.counts.(!i);
          incr i
        done;
        if !i >= n then t.max_seen else bucket_mid t !i
      end
    in
    (* The exact min/max are tracked; never report outside them. *)
    max t.min_seen (min t.max_seen estimate)
  end

let percentile t p = quantile t (p /. 100.)

let merge_into t ~from =
  if t.min_value <> from.min_value || t.per_decade <> from.per_decade then
    invalid_arg "Histogram.merge_into: parameter mismatch";
  ensure_capacity t (Array.length from.counts - 1);
  Array.iteri
    (fun i c -> if c > 0 then t.counts.(i) <- t.counts.(i) + c)
    from.counts;
  t.underflow <- t.underflow + from.underflow;
  t.total <- t.total + from.total;
  t.sum <- t.sum +. from.sum;
  if from.min_seen < t.min_seen then t.min_seen <- from.min_seen;
  if from.max_seen > t.max_seen then t.max_seen <- from.max_seen

let copy t = { t with counts = Array.copy t.counts }

let reset t =
  Array.fill t.counts 0 (Array.length t.counts) 0;
  t.underflow <- 0;
  t.total <- 0;
  t.sum <- 0.;
  t.min_seen <- infinity;
  t.max_seen <- neg_infinity

let buckets t =
  let acc = ref [] in
  for i = Array.length t.counts - 1 downto 0 do
    if t.counts.(i) > 0 then acc := (i, t.counts.(i)) :: !acc
  done;
  if t.underflow > 0 then (-1, t.underflow) :: !acc else !acc

let pp ppf t =
  Fmt.pf ppf "n=%d mean=%.6g p50=%.6g p95=%.6g p99=%.6g max=%.6g" t.total
    (mean t) (quantile t 0.5) (quantile t 0.95) (quantile t 0.99)
    (max_recorded t)
