type counter = { mutable c_value : int }
type gauge = { mutable g_value : float }

type t = {
  counters_tbl : (string, counter) Hashtbl.t;
  gauges_tbl : (string, gauge) Hashtbl.t;
  histos_tbl : (string, Histogram.t) Hashtbl.t;
}

let create () =
  {
    counters_tbl = Hashtbl.create 16;
    gauges_tbl = Hashtbl.create 16;
    histos_tbl = Hashtbl.create 16;
  }

let counter t name =
  match Hashtbl.find_opt t.counters_tbl name with
  | Some c -> c
  | None ->
      let c = { c_value = 0 } in
      Hashtbl.add t.counters_tbl name c;
      c

let incr c = c.c_value <- c.c_value + 1
let add c n = c.c_value <- c.c_value + n
let counter_value c = c.c_value

let gauge t name =
  match Hashtbl.find_opt t.gauges_tbl name with
  | Some g -> g
  | None ->
      let g = { g_value = 0. } in
      Hashtbl.add t.gauges_tbl name g;
      g

let set_gauge g v = g.g_value <- v
let gauge_value g = g.g_value

let histogram t ?min_value ?per_decade name =
  match Hashtbl.find_opt t.histos_tbl name with
  | Some h -> h
  | None ->
      let h = Histogram.create ?min_value ?per_decade () in
      Hashtbl.add t.histos_tbl name h;
      h

let sorted_bindings tbl value =
  Hashtbl.fold (fun name v acc -> (name, value v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters t = sorted_bindings t.counters_tbl (fun c -> c.c_value)
let gauges t = sorted_bindings t.gauges_tbl (fun g -> g.g_value)
let histograms t = sorted_bindings t.histos_tbl (fun h -> h)

let find_counter t name =
  Option.map (fun c -> c.c_value) (Hashtbl.find_opt t.counters_tbl name)

let find_histogram t name = Hashtbl.find_opt t.histos_tbl name

let pp ppf t =
  let lines =
    List.map (fun (n, v) -> Printf.sprintf "counter %s = %d" n v) (counters t)
    @ List.map (fun (n, v) -> Printf.sprintf "gauge %s = %g" n v) (gauges t)
    @ List.map
        (fun (n, h) -> Fmt.str "histogram %s: %a" n Histogram.pp h)
        (histograms t)
  in
  Fmt.(list ~sep:(any "@\n") string) ppf lines

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 256 in
  let obj label items render =
    Buffer.add_string buf (Printf.sprintf "\"%s\":{" label);
    List.iteri
      (fun i (name, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (Printf.sprintf "\"%s\":" (json_escape name));
        render v)
      items;
    Buffer.add_char buf '}'
  in
  Buffer.add_char buf '{';
  obj "counters" (counters t) (fun v ->
      Buffer.add_string buf (string_of_int v));
  Buffer.add_char buf ',';
  obj "gauges" (gauges t) (fun v ->
      Buffer.add_string buf (Printf.sprintf "%.6g" v));
  Buffer.add_char buf ',';
  obj "histograms" (histograms t) (fun h ->
      Buffer.add_string buf
        (Printf.sprintf
           "{\"count\":%d,\"mean\":%.6g,\"p50\":%.6g,\"p95\":%.6g,\"p99\":%.6g,\"max\":%.6g}"
           (Histogram.count h) (Histogram.mean h) (Histogram.quantile h 0.5)
           (Histogram.quantile h 0.95) (Histogram.quantile h 0.99)
           (Histogram.max_recorded h)));
  Buffer.add_char buf '}';
  Buffer.contents buf
