(** Log-bucketed (HDR-style) latency histogram.

    Values are binned into geometrically spaced buckets — [per_decade]
    buckets per factor of ten, so every recorded value is represented
    with bounded {e relative} error: a quantile estimate lands in the
    same bucket as the exact sort-based quantile and therefore deviates
    from it by at most one bucket width (a factor of
    [10^(1/per_decade)], ≈2.6 % at the default 90 buckets per decade).

    Recording is O(1) (one [log10] and an array increment), memory is
    proportional to the dynamic range actually observed, and histograms
    with equal parameters merge by plain bucket-count addition — the
    merge is exact, lossless and associative, which is what makes
    per-window or per-shard snapshots aggregatable. *)

type t

val create : ?min_value:float -> ?per_decade:int -> unit -> t
(** [min_value] is the smallest distinguishable positive value (default
    [1e-6]; anything smaller, zero included, lands in the underflow
    bucket and reports as [min_value]).  [per_decade] sets the precision
    (default 90).
    @raise Invalid_argument when [min_value <= 0] or [per_decade < 1]. *)

val min_value : t -> float
val per_decade : t -> int

val record : t -> float -> unit
(** Record one observation.  Negative values count as underflow. *)

val record_n : t -> float -> n:int -> unit
(** Record the same value [n] times ([n >= 0]). *)

val count : t -> int
(** Total observations recorded. *)

val underflow : t -> int
(** Observations below [min_value]. *)

val sum : t -> float
(** Exact running sum of recorded values (not bucketed). *)

val mean : t -> float
(** Exact mean; 0 when empty. *)

val min_recorded : t -> float
(** Exact smallest recorded value; 0 when empty. *)

val max_recorded : t -> float
(** Exact largest recorded value; 0 when empty. *)

val quantile : t -> float -> float
(** [quantile t q] with [q] in [[0, 1]]: nearest-rank quantile estimate —
    the geometric midpoint of the bucket holding the [ceil (q * count)]-th
    smallest observation, clamped to the exact observed min/max.  0 when
    empty.
    @raise Invalid_argument when [q] is outside [[0, 1]]. *)

val percentile : t -> float -> float
(** [percentile t p] = [quantile t (p /. 100.)]. *)

val merge_into : t -> from:t -> unit
(** Add every observation of [from] into the first histogram.  Exact:
    bucket counts add, so merging is associative and commutative.
    @raise Invalid_argument when the parameters differ. *)

val copy : t -> t
(** Independent snapshot (same parameters, same counts). *)

val reset : t -> unit
(** Forget every observation (parameters kept). *)

val buckets : t -> (int * int) list
(** Non-empty buckets as [(index, count)], ascending; underflow is index
    [-1].  Bucket [i] covers values in
    [[min_value * 10^(i/per_decade), min_value * 10^((i+1)/per_decade))]. *)

val bucket_lower : t -> int -> float
(** Lower bound of bucket [i] (the underflow bucket [-1] reports 0). *)

val pp : Format.formatter -> t -> unit
(** One-line summary: count, mean, p50/p95/p99, max. *)
