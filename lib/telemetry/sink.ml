type t = { metrics : Metrics.t; trace : Trace.t }

let create ?capacity () =
  { metrics = Metrics.create (); trace = Trace.create ?capacity () }

let c sink name =
  match sink with
  | None -> ()
  | Some s -> Metrics.incr (Metrics.counter s.metrics name)

let cn sink name n =
  match sink with
  | None -> ()
  | Some s -> Metrics.add (Metrics.counter s.metrics name) n

let h sink name v =
  match sink with
  | None -> ()
  | Some s -> Histogram.record (Metrics.histogram s.metrics name) v

let ev sink ~at name attrs =
  match sink with None -> () | Some s -> Trace.emit s.trace ~at name attrs
