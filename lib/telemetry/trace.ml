type value = Int of int | Float of float | Str of string | Bool of bool

type event = { at : float; name : string; attrs : (string * value) list }

type subscription = int

type t = {
  ring : event option array;
  mutable head : int;  (* next write position *)
  mutable len : int;
  mutable dropped : int;
  mutable subs : (subscription * (event -> unit)) list;
  mutable next_sub : subscription;
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity <= 0";
  {
    ring = Array.make capacity None;
    head = 0;
    len = 0;
    dropped = 0;
    subs = [];
    next_sub = 0;
  }

let capacity t = Array.length t.ring

let subscribe t f =
  let id = t.next_sub in
  t.next_sub <- id + 1;
  t.subs <- t.subs @ [ (id, f) ];
  id

let unsubscribe t id = t.subs <- List.filter (fun (i, _) -> i <> id) t.subs
let subscribers t = List.length t.subs

let emit t ~at name attrs =
  let e = { at; name; attrs } in
  let cap = capacity t in
  (if t.len = cap then t.dropped <- t.dropped + 1
   else t.len <- t.len + 1);
  t.ring.(t.head) <- Some e;
  t.head <- (t.head + 1) mod cap;
  match t.subs with
  | [] -> ()
  | subs -> List.iter (fun (_, f) -> f e) subs

let length t = t.len
let dropped t = t.dropped
let total t = t.len + t.dropped

let events t =
  let cap = capacity t in
  let start = (t.head - t.len + cap) mod cap in
  List.init t.len (fun i ->
      match t.ring.((start + i) mod cap) with
      | Some e -> e
      | None -> assert false)

let find t name = List.filter (fun e -> String.equal e.name name) (events t)

let clear t =
  Array.fill t.ring 0 (capacity t) None;
  t.head <- 0;
  t.len <- 0;
  t.dropped <- 0

type span = { s_name : string; s_at : float }

let span_start t ~at name attrs =
  emit t ~at (name ^ ".start") attrs;
  { s_name = name; s_at = at }

let span_end t ~at span attrs =
  emit t ~at (span.s_name ^ ".end")
    (("duration_s", Float (at -. span.s_at)) :: attrs)

let pp_value ppf = function
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.pf ppf "%g" f
  | Str s -> Fmt.string ppf s
  | Bool b -> Fmt.bool ppf b

let pp_event ppf e =
  Fmt.pf ppf "[%10.4f] %s%a" e.at e.name
    Fmt.(
      list ~sep:nop (fun ppf (k, v) -> Fmt.pf ppf " %s=%a" k pp_value v))
    e.attrs

let pp ppf t = Fmt.(list ~sep:(any "@\n") pp_event) ppf (events t)
