type t = {
  duration_s : float;
  offered : int;
  completed : int;
  shed : int;
  failed : int;
  availability : float;
  p50_s : float;
  p95_s : float;
  p99_s : float;
  mean_s : float;
  shed_rate : float;
  wasted_work_s : float;
  retries : int;
  hedges : int;
  bytes_moved_mb : float;
  migrations : int;
  faults_injected : int;
  trace_dropped : int;
  reallocations : int;
  rollbacks : int;
  drift_score : float;
  utilization : (int * float) list;
}

let availability_of ~offered ~completed =
  if offered <= 0 then 1. else float_of_int completed /. float_of_int offered

let of_histogram ~duration_s ~offered ~completed ~shed ~failed ~wasted_work_s
    ~retries ~hedges ~bytes_moved_mb ~migrations ~faults_injected
    ?(trace_dropped = 0) ?(reallocations = 0) ?(rollbacks = 0)
    ?(drift_score = 0.) ~utilization histo =
  {
    duration_s;
    offered;
    completed;
    shed;
    failed;
    availability = availability_of ~offered ~completed;
    p50_s = Histogram.quantile histo 0.5;
    p95_s = Histogram.quantile histo 0.95;
    p99_s = Histogram.quantile histo 0.99;
    mean_s = Histogram.mean histo;
    shed_rate =
      (if offered <= 0 then 0. else float_of_int shed /. float_of_int offered);
    wasted_work_s;
    retries;
    hedges;
    bytes_moved_mb;
    migrations;
    faults_injected;
    trace_dropped;
    reallocations;
    rollbacks;
    drift_score;
    utilization = List.sort (fun (a, _) (b, _) -> Int.compare a b) utilization;
  }

let pp ppf r =
  Fmt.pf ppf "duration          %10.0f s@\n" r.duration_s;
  Fmt.pf ppf "offered           %10d@\n" r.offered;
  Fmt.pf ppf "completed         %10d@\n" r.completed;
  Fmt.pf ppf "shed              %10d  (rate %.4f)@\n" r.shed r.shed_rate;
  Fmt.pf ppf "failed            %10d@\n" r.failed;
  Fmt.pf ppf "availability      %10.4f@\n" r.availability;
  Fmt.pf ppf "latency p50       %10.1f ms@\n" (1000. *. r.p50_s);
  Fmt.pf ppf "latency p95       %10.1f ms@\n" (1000. *. r.p95_s);
  Fmt.pf ppf "latency p99       %10.1f ms@\n" (1000. *. r.p99_s);
  Fmt.pf ppf "latency mean      %10.1f ms@\n" (1000. *. r.mean_s);
  Fmt.pf ppf "retries           %10d@\n" r.retries;
  Fmt.pf ppf "hedges            %10d@\n" r.hedges;
  Fmt.pf ppf "wasted work       %10.1f s@\n" r.wasted_work_s;
  Fmt.pf ppf "migrations        %10d  (%.1f MB moved)@\n" r.migrations
    r.bytes_moved_mb;
  Fmt.pf ppf "faults injected   %10d@\n" r.faults_injected;
  Fmt.pf ppf "reallocations     %10d  (%d rolled back)@\n" r.reallocations
    r.rollbacks;
  Fmt.pf ppf "drift score       %10.3f@\n" r.drift_score;
  if r.trace_dropped > 0 then
    Fmt.pf ppf "trace dropped     %10d  (ring overflow)@\n" r.trace_dropped;
  Fmt.pf ppf "utilization       %s"
    (String.concat " "
       (List.map
          (fun (b, u) -> Printf.sprintf "b%d=%.2f" b u)
          r.utilization))

let to_json r =
  let util =
    String.concat ","
      (List.map
         (fun (b, u) -> Printf.sprintf "\"%d\":%.4f" b u)
         r.utilization)
  in
  Printf.sprintf
    "{\"duration_s\":%.1f,\"offered\":%d,\"completed\":%d,\"shed\":%d,\
     \"failed\":%d,\"availability\":%.6f,\"p50_ms\":%.3f,\"p95_ms\":%.3f,\
     \"p99_ms\":%.3f,\"mean_ms\":%.3f,\"shed_rate\":%.6f,\
     \"wasted_work_s\":%.1f,\"retries\":%d,\"hedges\":%d,\
     \"bytes_moved_mb\":%.1f,\"migrations\":%d,\"faults_injected\":%d,\
     \"trace_dropped\":%d,\"reallocations\":%d,\"rollbacks\":%d,\
     \"drift_score\":%.4f,\"utilization\":{%s}}"
    r.duration_s r.offered r.completed r.shed r.failed r.availability
    (1000. *. r.p50_s) (1000. *. r.p95_s) (1000. *. r.p99_s)
    (1000. *. r.mean_s) r.shed_rate r.wasted_work_s r.retries r.hedges
    r.bytes_moved_mb r.migrations r.faults_injected r.trace_dropped
    r.reallocations r.rollbacks r.drift_score util

type gate = {
  min_availability : float option;
  max_p99_s : float option;
  max_shed_rate : float option;
}

let gate ?min_availability ?max_p99_s ?max_shed_rate () =
  { min_availability; max_p99_s; max_shed_rate }

let check g r =
  let viol = ref [] in
  (match g.max_shed_rate with
  | Some m when r.shed_rate > m ->
      viol :=
        Printf.sprintf "shed rate %.4f exceeds max %.4f" r.shed_rate m :: !viol
  | _ -> ());
  (match g.max_p99_s with
  | Some m when r.p99_s > m ->
      viol :=
        Printf.sprintf "p99 %.1f ms exceeds max %.1f ms" (1000. *. r.p99_s)
          (1000. *. m)
        :: !viol
  | _ -> ());
  (match g.min_availability with
  | Some m when r.availability < m ->
      viol :=
        Printf.sprintf "availability %.4f below min %.4f" r.availability m
        :: !viol
  | _ -> ());
  !viol
