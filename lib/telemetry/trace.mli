(** Structured trace events keyed on the simulated event clock.

    A trace is a bounded ring of [{at; name; attrs}] events.  Emitters
    stamp events with the simulation time, not wall clock, so a trace
    reads as a causally ordered story of a run: request lifecycle,
    retries, hedges, migration copy/cutover, breaker transitions, shed
    and refusal decisions.  When the ring fills, the oldest events are
    dropped (and counted) — tracing never grows without bound and never
    perturbs the simulation.

    {!subscribe} registers a streaming observer that sees {e every}
    emitted event, including the ones the bounded ring later evicts —
    the hook runtime-verification monitors are built on. *)

type value = Int of int | Float of float | Str of string | Bool of bool

type event = { at : float; name : string; attrs : (string * value) list }

type t

val create : ?capacity:int -> unit -> t
(** Ring buffer of up to [capacity] events (default 4096).
    @raise Invalid_argument when [capacity <= 0]. *)

val emit : t -> at:float -> string -> (string * value) list -> unit
(** Append an event; evicts the oldest when full.  Every subscriber is
    invoked with the event, whether or not the ring retains it. *)

(** {1 Subscriptions}

    Ring consumers see a bounded window; subscribers see the full stream.
    Subscribers run synchronously inside {!emit}, in subscription order,
    and must not emit into the same trace. *)

type subscription

val subscribe : t -> (event -> unit) -> subscription
(** Register a callback invoked on every subsequent {!emit}. *)

val unsubscribe : t -> subscription -> unit
(** Remove a subscription; unknown ids are ignored. *)

val subscribers : t -> int
(** Number of live subscriptions. *)

val length : t -> int
(** Events currently retained. *)

val dropped : t -> int
(** Events evicted because the ring was full. *)

val total : t -> int
(** Events ever emitted ([length + dropped]). *)

val events : t -> event list
(** Retained events, oldest first. *)

val find : t -> string -> event list
(** Retained events with the given name, oldest first. *)

val clear : t -> unit

(** {1 Spans}

    A span is a named interval on the simulated clock.  [span_start]
    emits a ["<name>.start"] event and returns a handle; [span_end]
    emits ["<name>.end"] carrying the duration plus any extra
    attributes. *)

type span

val span_start : t -> at:float -> string -> (string * value) list -> span
val span_end : t -> at:float -> span -> (string * value) list -> unit

val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit
(** All retained events, one per line. *)
