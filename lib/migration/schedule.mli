(** Timed realization of a migration {!Planner.plan} under a per-stream
    bandwidth throttle.

    Each copy occupies one stream on its destination and one on its source
    (the authoritative master counts as a single extra stream), so copies
    to different backends overlap while copies sharing a node serialize —
    the background load a real rebalancer imposes.  The copy phase ends at
    {!field-copy_done}; the contract phase (all drops) executes at the same
    barrier, so the plan's expand-then-contract guarantee carries over to
    the timeline. *)

type timed_move = {
  move : Planner.move;
  start : float;
  finish : float;  (** cutover instant: the destination serves the fragment
                       from here on (captured deltas replayed just before) *)
}

type t = {
  plan : Planner.plan;
  bandwidth : float;  (** throttle per stream, MB/s *)
  start : float;
  moves : timed_move list;  (** sorted by [start] *)
  copy_done : float;  (** when the last copy finishes *)
  drops_at : float;  (** the contract barrier ([= copy_done]) *)
}

val make : ?start:float -> bandwidth:float -> Planner.plan -> t
(** Greedy earliest-start scheduling of the plan's moves in plan order.
    @raise Invalid_argument when [bandwidth <= 0]. *)

val duration : t -> float
(** [drops_at - start]: wall-clock length of the migration. *)

val copying : t -> backend:int -> at:float -> bool
(** Whether the physical node is the source or destination of an in-flight
    copy at time [at] — i.e. whether foreground requests on it contend with
    background copy I/O. *)

val pp : t Fmt.t
