open Cdbs_core

type 'a capture = {
  mutable items : 'a list;  (* reversed arrival order *)
  mutable mb : float;
}

type 'a t = {
  (* Keyed by (dest, fragment identity); sizes do not participate in
     fragment identity, so the key is the kind. *)
  captures : (int * Fragment.kind, 'a capture) Hashtbl.t;
  mutable lifetime_mb : float;
}

let create () = { captures = Hashtbl.create 16; lifetime_mb = 0. }

let key ~dest ~(fragment : Fragment.t) = (dest, fragment.Fragment.kind)

let open_capture t ~dest ~fragment =
  Hashtbl.replace t.captures (key ~dest ~fragment) { items = []; mb = 0. }

let capture t ~fragment ~item ~mb =
  let hits = ref 0 in
  Hashtbl.iter
    (fun (_, kind) c ->
      if kind = fragment.Fragment.kind then begin
        c.items <- item :: c.items;
        c.mb <- c.mb +. mb;
        incr hits
      end)
    t.captures;
  t.lifetime_mb <- t.lifetime_mb +. (mb *. float_of_int !hits);
  !hits

let pending_mb t ~dest ~fragment =
  match Hashtbl.find_opt t.captures (key ~dest ~fragment) with
  | Some c -> c.mb
  | None -> 0.

let drain t ~dest ~fragment =
  let k = key ~dest ~fragment in
  match Hashtbl.find_opt t.captures k with
  | None -> ([], 0.)
  | Some c ->
      Hashtbl.remove t.captures k;
      (List.rev c.items, c.mb)

let open_captures t =
  Hashtbl.fold
    (fun (dest, kind) _ acc ->
      ({ Fragment.kind; size = 0. } |> fun f -> (dest, f)) :: acc)
    t.captures []

let total_captured_mb t = t.lifetime_mb
