type timed_move = {
  move : Planner.move;
  start : float;
  finish : float;
}

type t = {
  plan : Planner.plan;
  bandwidth : float;
  start : float;
  moves : timed_move list;
  copy_done : float;
  drops_at : float;
}

let make ?(start = 0.) ~bandwidth (plan : Planner.plan) =
  if bandwidth <= 0. then invalid_arg "Schedule.make: bandwidth <= 0";
  (* One stream per physical node plus one for the master source. *)
  let free = Array.make (plan.Planner.num_physical + 1) start in
  let master = plan.Planner.num_physical in
  let copy_done = ref start in
  let moves =
    List.map
      (fun (m : Planner.move) ->
        let src = match m.Planner.source with Some u -> u | None -> master in
        let st = max free.(m.Planner.dest) free.(src) in
        let fin = st +. (m.Planner.size /. bandwidth) in
        free.(m.Planner.dest) <- fin;
        free.(src) <- fin;
        if fin > !copy_done then copy_done := fin;
        { move = m; start = st; finish = fin })
      plan.Planner.moves
  in
  let moves =
    List.stable_sort
      (fun (a : timed_move) (b : timed_move) -> Float.compare a.start b.start)
      moves
  in
  { plan; bandwidth; start; moves; copy_done = !copy_done; drops_at = !copy_done }

let duration t = t.drops_at -. t.start

let copying t ~backend ~at =
  List.exists
    (fun (tm : timed_move) ->
      tm.start <= at && at < tm.finish
      && (tm.move.Planner.dest = backend
         || tm.move.Planner.source = Some backend))
    t.moves

let pp ppf t =
  Fmt.pf ppf
    "migration schedule: %d copies @@ %.1f MB/s, copy phase %.2fs-%.2fs, \
     drops @@ %.2fs@."
    (List.length t.moves) t.bandwidth t.start t.copy_done t.drops_at;
  List.iter
    (fun (tm : timed_move) ->
      Fmt.pf ppf "  [%8.2f, %8.2f) %a@." tm.start tm.finish Planner.pp_move
        tm.move)
    t.moves
