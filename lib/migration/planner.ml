open Cdbs_core

type move = {
  fragment : Fragment.t;
  dest : int;
  source : int option;
  size : float;
}

type drop = {
  victim : Fragment.t;
  at_backend : int;
}

type plan = {
  physical : Physical.plan;
  dest_of_new : int array;
  num_physical : int;
  old_sets : Fragment.Set.t array;
  target_sets : Fragment.Set.t array;
  moves : move list;
  drops : drop list;
  copy_mb : float;
  full_rebuild_mb : float;
}

let make ~old_fragments target =
  let nv = Allocation.num_backends target in
  let nu = List.length old_fragments in
  let old_arr = Array.of_list old_fragments in
  let physical = Physical.plan_scaled ~old_fragments target in
  let num_physical = max nu nv in
  (* Logical target backend v runs on the matched old node, or on the next
     fresh physical index when matched to a virtual (empty) old node. *)
  let next_fresh = ref nu in
  let dest_of_new =
    Array.init nv (fun v ->
        let u = physical.Physical.mapping.(v) in
        if u >= 0 then u
        else begin
          let p = !next_fresh in
          incr next_fresh;
          p
        end)
  in
  let old_sets =
    Array.init num_physical (fun p ->
        if p < nu then old_arr.(p) else Fragment.Set.empty)
  in
  let target_sets = Array.make num_physical Fragment.Set.empty in
  Array.iteri
    (fun v p -> target_sets.(p) <- Allocation.fragments_of target v)
    dest_of_new;
  (* A copy for every fragment a physical node needs but does not hold;
     the source is any running node that already stores the fragment. *)
  let source_of f =
    let rec go p =
      if p >= nu then None
      else if Fragment.Set.mem f old_sets.(p) then Some p
      else go (p + 1)
    in
    go 0
  in
  let moves = ref [] in
  for p = 0 to num_physical - 1 do
    Fragment.Set.iter
      (fun f ->
        moves :=
          { fragment = f; dest = p; source = source_of f; size = f.Fragment.size }
          :: !moves)
      (Fragment.Set.diff target_sets.(p) old_sets.(p))
  done;
  let moves =
    List.sort
      (fun a b ->
        let c = Float.compare a.size b.size in
        if c <> 0 then c
        else
          let c = Fragment.compare a.fragment b.fragment in
          if c <> 0 then c else Int.compare a.dest b.dest)
      !moves
  in
  let drops = ref [] in
  for p = num_physical - 1 downto 0 do
    Fragment.Set.iter
      (fun f -> drops := { victim = f; at_backend = p } :: !drops)
      (Fragment.Set.diff old_sets.(p) target_sets.(p))
  done;
  let copy_mb = List.fold_left (fun acc m -> acc +. m.size) 0. moves in
  let full_rebuild_mb =
    Array.fold_left (fun acc s -> acc +. Fragment.set_size s) 0. target_sets
  in
  {
    physical;
    dest_of_new;
    num_physical;
    old_sets;
    target_sets;
    moves;
    drops = !drops;
    copy_mb;
    full_rebuild_mb;
  }

let is_noop p = p.moves = [] && p.drops = []

let class_replicas live (c : Query_class.t) =
  Array.fold_left
    (fun acc set ->
      if Fragment.Set.subset c.Query_class.fragments set then acc + 1 else acc)
    0 live

let min_live_replicas ?k:_ plan workload =
  let classes = Workload.all_classes workload in
  let live = Array.copy plan.old_sets in
  let mins =
    List.map (fun c -> (c, ref (class_replicas live c))) classes
  in
  let observe () =
    List.iter
      (fun (c, m) ->
        let r = class_replicas live c in
        if r < !m then m := r)
      mins
  in
  List.iter
    (fun mv ->
      live.(mv.dest) <- Fragment.Set.add mv.fragment live.(mv.dest);
      observe ())
    plan.moves;
  (* Contract phase: all drops land at one barrier. *)
  List.iter
    (fun d ->
      live.(d.at_backend) <- Fragment.Set.remove d.victim live.(d.at_backend))
    plan.drops;
  observe ();
  List.map (fun ((c : Query_class.t), m) -> (c.Query_class.id, !m)) mins

let validate ?(k = 0) plan workload =
  let classes = Workload.all_classes workload in
  let initial c = class_replicas plan.old_sets c in
  let final c = class_replicas plan.target_sets c in
  let mins = min_live_replicas plan workload in
  let errs =
    List.filter_map
      (fun (c : Query_class.t) ->
        let m = List.assoc c.Query_class.id mins in
        let floor = min (k + 1) (min (initial c) (final c)) in
        if m < floor then
          Some
            (Fmt.str "class %s drops to %d live replicas (floor %d)"
               c.Query_class.id m floor)
        else if m < 1 && initial c >= 1 && final c >= 1 then
          Some (Fmt.str "class %s loses its last live replica" c.Query_class.id)
        else None)
      classes
  in
  match errs with [] -> Ok () | e :: _ -> Error e

let pp_move ppf m =
  Fmt.pf ppf "%a -> B%d (%s, %.1f MB)" Fragment.pp m.fragment m.dest
    (match m.source with Some u -> Fmt.str "from B%d" u | None -> "from master")
    m.size

let pp ppf p =
  Fmt.pf ppf "migration plan: %d copies (%.1f MB, full rebuild %.1f MB), %d drops@."
    (List.length p.moves) p.copy_mb p.full_rebuild_mb (List.length p.drops);
  List.iter (fun m -> Fmt.pf ppf "  copy %a@." pp_move m) p.moves;
  List.iter
    (fun d -> Fmt.pf ppf "  drop %a @@ B%d@." Fragment.pp d.victim d.at_backend)
    p.drops
