(** Delta journal for in-flight fragment copies.

    A copy ships a snapshot; updates that arrive while the snapshot is on
    the wire must not be lost.  Each (destination, fragment) copy opens a
    capture; updates touching the fragment are appended to every open
    capture; at cutover the capture is drained and replayed on the
    destination before the fragment goes live there.

    The journal is polymorphic in the captured item so the simulator can
    capture abstract costs while the controller captures SQL statements. *)

open Cdbs_core

type 'a t

val create : unit -> 'a t

val open_capture : 'a t -> dest:int -> fragment:Fragment.t -> unit
(** Start capturing updates to [fragment] destined for backend [dest].
    Re-opening an open capture resets it (fresh snapshot, empty delta). *)

val capture : 'a t -> fragment:Fragment.t -> item:'a -> mb:float -> int
(** Record an update touching [fragment] into every open capture for it;
    returns the number of captures that recorded it. *)

val pending_mb : 'a t -> dest:int -> fragment:Fragment.t -> float
(** Megabytes of captured-but-unreplayed updates for the copy. *)

val drain : 'a t -> dest:int -> fragment:Fragment.t -> 'a list * float
(** Close the capture and return its items in arrival order together with
    their total megabytes.  Returns [([], 0.)] when no capture is open. *)

val open_captures : 'a t -> (int * Fragment.t) list
(** The (dest, fragment) pairs currently capturing. *)

val total_captured_mb : 'a t -> float
(** Megabytes captured over the journal's lifetime (drained or not). *)
