(** Live migration planning: turning a Hungarian-matched {!Cdbs_core.Physical}
    deployment plan into an ordered sequence of per-fragment copy and drop
    steps that can execute while the cluster keeps serving.

    The plan follows the expand-then-contract discipline of online
    rebalancing: every copy completes (and its captured deltas are replayed)
    before any fragment is dropped, so the set of live replicas of every
    query class only grows during the copy phase and shrinks directly to the
    target placement at the final barrier.  A class therefore never loses
    its last live replica mid-move, and an initially k-safe placement stays
    k-safe throughout the migration whenever the target is k-safe.

    Copies are ordered smallest-transfer-first: cheap moves cut over early,
    which brings additional serving capacity online as soon as possible. *)

open Cdbs_core

type move = {
  fragment : Fragment.t;
  dest : int;  (** physical node that must receive the fragment *)
  source : int option;
      (** physical node shipping it ([None]: no running backend holds the
          fragment — it is extracted from the authoritative master copy) *)
  size : float;  (** megabytes on the wire *)
}

type drop = {
  victim : Fragment.t;
  at_backend : int;  (** physical node releasing the fragment *)
}

type plan = {
  physical : Cdbs_core.Physical.plan;
      (** the underlying minimum-transfer matching (Eq. 27) *)
  dest_of_new : int array;
      (** logical backend [v] of the target allocation lives on physical
          node [dest_of_new.(v)]; fresh nodes get indices past the old
          cluster size *)
  num_physical : int;
      (** physical nodes alive at any point of the migration:
          [max old-count new-count] *)
  old_sets : Fragment.Set.t array;
      (** what each physical node stores when the migration starts
          (padded with empty sets for fresh nodes) *)
  target_sets : Fragment.Set.t array;
      (** what each physical node stores once the migration is complete
          (empty for decommissioned nodes) *)
  moves : move list;  (** copy steps, smallest-transfer-first *)
  drops : drop list;  (** applied only after every copy has cut over *)
  copy_mb : float;  (** total megabytes shipped — equals [physical.transfer] *)
  full_rebuild_mb : float;
      (** bytes a stop-the-world rebuild would ship (the entire target
          placement, Eq. 28 numerator) *)
}

val make : old_fragments:Fragment.Set.t list -> Allocation.t -> plan
(** Plan the live deployment of the target allocation onto backends that
    currently hold [old_fragments] (one set per running physical node; the
    counts may differ — extra old nodes are decommissioned, extra new
    logical backends land on fresh physical nodes). *)

val is_noop : plan -> bool
(** No data to ship and nothing to drop: the placement already matches. *)

val min_live_replicas :
  ?k:int -> plan -> Workload.t -> (string * int) list
(** Replay the plan's step sequence and report, per query class, the
    minimum number of simultaneously live full replicas over the whole
    migration.  With the expand-then-contract ordering this minimum is
    [min (initial count) (final count)] — the function exists so tests and
    callers can verify the invariant rather than trust it.  [k] is unused
    for the computation but documents intent in call sites. *)

val validate : ?k:int -> plan -> Workload.t -> (unit, string) result
(** Check that no query class ever drops below [min (k+1) (initial) (final)]
    live replicas at any step boundary, and never below one when it was
    initially served.  [k] defaults to 0. *)

val pp_move : move Fmt.t
val pp : plan Fmt.t
