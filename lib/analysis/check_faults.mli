(** Fault-timeline lints beyond {!Cdbs_faults.Fault.validate}
    ([FLT*] namespace).

    [Fault.validate] rejects structurally impossible schedules (crashing
    a crashed backend, overlapping slowdowns); these lints flag schedules
    and chaos parameters that are {e possible} but implausible or outside
    the availability guarantee the allocation was built for:

    - [FLT001] the schedule fails structural validation outright
    - [FLT002] a crash is never recovered (permanent failure — fine for a
      degradation study, surprising in a chaos run)
    - [FLT003] MTTR at or above MTBF (backends down more than up)
    - [FLT004] peak concurrent crashes exceed the allocation's k-safety
      degree (beyond the availability guarantee)
    - [FLT005] (info) chaos horizon shorter than the MTBF (the expected
      fault count per backend is below one)
    - [FLT006] extreme slowdown factor (indistinguishable from a crash,
      but invisible to crash-handling machinery)
    - [FLT007] a zero-length down window (crash and recovery at the same
      instant — a no-op fault)
    - [FLT008] chaos parameters out of range (the generator would reject
      or silently misbehave)
    - [FLT009] a correlated fault (partition / zone outage — or a chaos
      configuration with correlated failures over a single zone) isolates
      every backend at once: a whole-cluster blackout no placement can
      survive

    [k], where accepted, is the k-safety degree the workload's allocation
    guarantees; omit it to skip the guarantee cross-checks. *)

val check_schedule :
  ?k:int ->
  ?zone_of:int array ->
  num_backends:int ->
  Cdbs_faults.Fault.schedule ->
  Diagnostic.t list
(** Lint a concrete timeline.  Runs {!Cdbs_faults.Fault.validate} first
    ([FLT001]); the remaining lints run only on valid schedules.
    [Partition] and [ZoneOutage] windows count toward the concurrent-down
    peak ([FLT004]) — a partitioned backend is as unreachable as a crashed
    one.  [zone_of] (e.g. a copy of {!Cdbs_core.Topology}'s assignment) is
    required for schedules containing zone outages; without it they fail
    validation. *)

val check_params : ?k:int -> Cdbs_faults.Chaos.params -> Diagnostic.t list
(** Lint a chaos-generator configuration ([FLT003]/[FLT004]/[FLT005]/
    [FLT006]/[FLT008]/[FLT009]). *)
