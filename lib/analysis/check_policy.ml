module Res = Cdbs_resilience

let finite f = Float.is_finite f

let check (p : Res.Policy.t) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let invalid code subject fmt =
    Printf.ksprintf
      (fun msg -> add (Diagnostic.error ~code ~subject "%s" msg))
      fmt
  in
  (match p.Res.Policy.admission with
  | None -> ()
  | Some a ->
      let subject = "admission" in
      if a.Res.Admission.max_depth < 1 then
        invalid "RES006" subject "max_depth %d < 1" a.Res.Admission.max_depth;
      if (not (finite a.Res.Admission.max_pending))
         || a.Res.Admission.max_pending <= 0.
      then
        invalid "RES006" subject "max_pending %g is not a positive duration"
          a.Res.Admission.max_pending);
  (match p.Res.Policy.breaker with
  | None -> ()
  | Some b ->
      let subject = "breaker" in
      if (not (finite b.Res.Breaker.ewma_alpha))
         || b.Res.Breaker.ewma_alpha <= 0.
         || b.Res.Breaker.ewma_alpha > 1.
      then
        invalid "RES007" subject "ewma_alpha %g outside (0, 1]"
          b.Res.Breaker.ewma_alpha;
      if (not (finite b.Res.Breaker.latency_factor))
         || b.Res.Breaker.latency_factor < 1.
      then
        invalid "RES007" subject
          "latency_factor %g < 1 (would trip on peer-median latency)"
          b.Res.Breaker.latency_factor;
      if b.Res.Breaker.min_samples < 1 then
        invalid "RES007" subject "min_samples %d < 1" b.Res.Breaker.min_samples;
      if b.Res.Breaker.error_window < 1 then
        invalid "RES007" subject "error_window %d < 1"
          b.Res.Breaker.error_window;
      if (not (finite b.Res.Breaker.error_threshold))
         || b.Res.Breaker.error_threshold <= 0.
         || b.Res.Breaker.error_threshold > 1.
      then
        invalid "RES007" subject "error_threshold %g outside (0, 1]"
          b.Res.Breaker.error_threshold;
      if (not (finite b.Res.Breaker.cool_down)) || b.Res.Breaker.cool_down <= 0.
      then invalid "RES007" subject "cool_down %g <= 0" b.Res.Breaker.cool_down;
      if b.Res.Breaker.probes < 1 then
        invalid "RES007" subject "probes %d < 1" b.Res.Breaker.probes;
      (* Threshold finer than the window resolution: with a full window of
         [w] samples, a single failure already yields an error rate of
         [1/w] >= threshold — any hiccup trips the breaker. *)
      if
        b.Res.Breaker.error_window >= 1
        && b.Res.Breaker.error_threshold > 0.
        && b.Res.Breaker.error_threshold
           *. float_of_int b.Res.Breaker.error_window
           < 1.
      then
        add
          (Diagnostic.warning ~code:"RES003" ~subject:"breaker"
             ~data:
               [
                 ("error_threshold", Diagnostic.Num b.Res.Breaker.error_threshold);
                 ("error_window", Diagnostic.Int b.Res.Breaker.error_window);
               ]
             "error threshold %g is finer than the %d-sample window \
              resolves: one failure trips the breaker"
             b.Res.Breaker.error_threshold b.Res.Breaker.error_window));
  (match p.Res.Policy.hedge with
  | None -> ()
  | Some h ->
      let subject = "hedge" in
      if (not (finite h.Res.Hedge.percentile))
         || h.Res.Hedge.percentile <= 0.
         || h.Res.Hedge.percentile > 100.
      then
        invalid "RES008" subject "percentile %g outside (0, 100]"
          h.Res.Hedge.percentile;
      if (not (finite h.Res.Hedge.min_delay)) || h.Res.Hedge.min_delay <= 0.
      then invalid "RES008" subject "min_delay %g <= 0" h.Res.Hedge.min_delay;
      if h.Res.Hedge.min_observations < 1 then
        invalid "RES008" subject "min_observations %d < 1"
          h.Res.Hedge.min_observations;
      if h.Res.Hedge.window < h.Res.Hedge.min_observations then
        invalid "RES008" subject "window %d < min_observations %d"
          h.Res.Hedge.window h.Res.Hedge.min_observations;
      if
        h.Res.Hedge.percentile > 0.
        && h.Res.Hedge.percentile <= 100.
        && h.Res.Hedge.percentile < 50.
      then
        add
          (Diagnostic.warning ~code:"RES004" ~subject:"hedge"
             ~data:[ ("percentile", Diagnostic.Num h.Res.Hedge.percentile) ]
             "hedge delay at the p%g latency hedges the majority of reads \
              (expected a tail percentile, e.g. p95)"
             h.Res.Hedge.percentile));
  (match p.Res.Policy.deadline with
  | None -> ()
  | Some d ->
      if (not (finite d.Res.Deadline.budget)) || d.Res.Deadline.budget <= 0.
      then
        invalid "RES009" "deadline" "budget %g is not a positive duration"
          d.Res.Deadline.budget);
  (* Cross-defense lints: each only meaningful when both sides are on and
     individually valid. *)
  (match (p.Res.Policy.hedge, p.Res.Policy.deadline) with
  | Some h, Some d
    when h.Res.Hedge.min_delay > 0.
         && d.Res.Deadline.budget > 0.
         && h.Res.Hedge.min_delay >= d.Res.Deadline.budget ->
      add
        (Diagnostic.warning ~code:"RES001" ~subject:"hedge"
           ~data:
             [
               ("min_delay", Diagnostic.Num h.Res.Hedge.min_delay);
               ("budget", Diagnostic.Num d.Res.Deadline.budget);
             ]
           "hedge delay floor %g s meets or exceeds the deadline budget \
            %g s: no hedge can ever fire in time"
           h.Res.Hedge.min_delay d.Res.Deadline.budget)
  | _ -> ());
  (match (p.Res.Policy.admission, p.Res.Policy.deadline) with
  | Some a, Some d
    when a.Res.Admission.max_pending > 0.
         && d.Res.Deadline.budget > 0.
         && a.Res.Admission.max_pending >= d.Res.Deadline.budget ->
      add
        (Diagnostic.warning ~code:"RES002" ~subject:"admission"
           ~data:
             [
               ("max_pending", Diagnostic.Num a.Res.Admission.max_pending);
               ("budget", Diagnostic.Num d.Res.Deadline.budget);
             ]
           "pending watermark %g s meets or exceeds the deadline budget \
            %g s: admitted work can already be past its client's deadline"
           a.Res.Admission.max_pending d.Res.Deadline.budget)
  | _ -> ());
  (match p with
  | {
   Res.Policy.admission = None;
   breaker = None;
   hedge = None;
   deadline = None;
  } ->
      add
        (Diagnostic.info ~code:"RES005" ~subject:"policy"
           "every defense is disabled (legacy behaviour; overload is \
            unmitigated)")
  | _ -> ());
  Diagnostic.sort !diags
