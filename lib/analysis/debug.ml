open Cdbs_core

let is_installed = ref false

let install () =
  if not !is_installed then begin
    is_installed := true;
    Invariants.set_allocation_hook (fun ~context alloc ->
        Check_allocation.check_exn ~context alloc);
    Invariants.enable ()
  end

let installed () = !is_installed
