(** Diagnostics — the common currency of the static plan verifier.

    Every checker ({!Check_allocation}, {!Check_migration},
    {!Check_workload}) reports its findings as a list of diagnostics: a
    severity, a stable machine-readable code (["ALC003"]), the artifact
    location it refers to (["class Q2"], ["backend B3"], ["move
    lineitem->B2"]), a human message, and a machine-readable payload of
    named values.  Codes are stable across releases so CI pipelines can
    allowlist or gate on them; messages are not.

    Code namespaces: [ALC*] allocation, [WKL*] workload, [MIG*] migration
    plan, [SCH*] copy schedule, [DLT*] delta journal, [TRC*] trace
    protocol (runtime verification, {!Monitor}), [RES*] resilience
    policy ({!Check_policy}), [FLT*] fault timeline ({!Check_faults}). *)

type severity = Error | Warning | Info

type value = Str of string | Num of float | Int of int | Bool of bool
(** Payload values — what a machine consumer needs to act on the finding
    without parsing the message. *)

type t = {
  severity : severity;
  code : string;
  subject : string;  (** artifact location, e.g. ["class Q2"] *)
  message : string;
  data : (string * value) list;
}

val make :
  severity -> code:string -> subject:string ->
  ?data:(string * value) list -> string -> t

val error :
  code:string -> subject:string -> ?data:(string * value) list ->
  ('a, unit, string, t) format4 -> 'a

val warning :
  code:string -> subject:string -> ?data:(string * value) list ->
  ('a, unit, string, t) format4 -> 'a

val info :
  code:string -> subject:string -> ?data:(string * value) list ->
  ('a, unit, string, t) format4 -> 'a

val severity_label : severity -> string
(** ["error"], ["warning"] or ["info"]. *)

(** {1 Reports} *)

val errors : t list -> t list
val warnings : t list -> t list
val has_errors : t list -> bool

val sort : t list -> t list
(** Stable order: errors first, then warnings, then infos; within a
    severity by code, then subject. *)

val summary : t list -> string
(** e.g. ["2 errors, 1 warning"]; ["clean"] when empty. *)

(** {1 Renderers} *)

val pp : t Fmt.t
(** One line: [error ALC003 [class Q2]: read class assigned 0.80 of
    weight 1.00]. *)

val pp_report : t list Fmt.t
(** All diagnostics in {!sort} order, one per line, followed by the
    {!summary}. *)

val to_json : t -> string
(** One diagnostic as a JSON object; payload values keep their types
    (non-finite floats are rendered as JSON strings). *)

val list_to_json : t list -> string
(** A JSON array of {!to_json} objects, in {!sort} order. *)
