(** Allocation invariants — an independent re-statement of the paper's
    structural constraints, checked against any {!Cdbs_core.Allocation.t}
    regardless of which algorithm produced it.

    Codes:
    - [ALC001] (error)   negative assignment
    - [ALC002] (error)   locality, Eq. 8: class assigned to a backend that
                         does not hold all its fragments
    - [ALC003] (error)   read-weight conservation, Eq. 9: per-backend
                         shares of a read class do not sum to its weight
    - [ALC004] (error)   ROWA pinning, Eq. 10: an update class overlaps a
                         backend's data but is not pinned there at full
                         weight
    - [ALC005] (error)   an update class carries weight on a backend that
                         holds none of its data
    - [ALC006] (error)   Eq. 11: an update class with positive weight is
                         allocated nowhere
    - [ALC007] (error)   scale bound, Eqs. 14–15: the allocation's scale
                         factor exceeds [max_scale]
    - [ALC008] (error)   storage bound: a backend stores more megabytes
                         than its [storage_limit_mb] entry allows
    - [ALC009] (error)   k-safety: a query class is served by fewer than
                         [k+1] backends (only with [~k > 0])
    - [ALC010] (warning) k-safety, Eq. 46: a fragment is stored fewer than
                         [k+1] times (only with [~k > 0])
    - [ALC011] (warning) dead storage: a backend holds a fragment no class
                         assigned on it references (prune would drop it;
                         suppressed when [~k > 0] — standby replicas are
                         intentional there)
    - [ALC012] (info)    idle backend: no fragments and no assigned load
    - [ALC013] (error)   domain spread: a query class's replicas span
                         fewer than [min (k+1, zones)] fault domains — a
                         single zone outage takes out every copy (only
                         with [~topology] and [~k > 0])
    - [ALC014] (error)   the given [topology] does not cover exactly the
                         allocation's backends
    - [ALC015] (warning) diagnostic overflow: the dense-path checker
                         capped a code's findings (first 100 shown) *)

open Cdbs_core

val check :
  ?k:int ->
  ?max_scale:float ->
  ?storage_limit_mb:float array ->
  ?topology:Topology.t ->
  Allocation.t ->
  Diagnostic.t list
(** [k] defaults to 0 (no k-safety checks); [max_scale] and
    [storage_limit_mb] (per backend, in MB) enable the corresponding bound
    checks when given.  [topology] enables the domain-spread checks:
    ALC014 always, ALC013 when [k > 0]. *)

val check_dense :
  ?k:int ->
  ?max_scale:float ->
  ?topology:Topology.t ->
  Dense.t ->
  Diagnostic.t list
(** The Eq. 8–11 / 14–15 scans ported to the {!Cdbs_core.Dense} views:
    indexed passes over the assignment matrix and held bitsets, no set
    operations, so a 10⁵+-fragment allocation verifies in milliseconds.
    Retired backends and tombstoned classes are skipped.  Per-code output
    is capped at 100 findings (ALC015 reports the overflow); ALC008/ALC010
    have no dense counterpart yet. *)

val check_exn :
  ?k:int -> ?topology:Topology.t -> context:string -> Allocation.t -> unit
(** Raise {!Cdbs_core.Invariants.Violation} listing all error-severity
    findings; warnings and infos are ignored.  The assertion form used by
    debug-mode call sites. *)
