(** Migration-plan invariants — an independent verifier for
    {!Cdbs_migration.Planner} plans, {!Cdbs_migration.Schedule} timelines
    and {!Cdbs_migration.Delta} journals.  It re-derives the
    expand-then-contract guarantees from the artifacts alone instead of
    trusting the planner's own bookkeeping.

    Plan codes:
    - [MIG001] (error)   move destination or source index out of range
    - [MIG002] (error)   move source does not hold the fragment it ships
    - [MIG003] (warning) redundant copy: the destination already holds the
                         fragment
    - [MIG004] (error)   drop victim not stored at the dropping backend
    - [MIG005] (error)   a fragment is both copied to and dropped at the
                         same backend
    - [MIG006] (error)   placement equation broken:
                         [(old ∪ copies) \ drops ≠ target] on some backend
    - [MIG007] (error)   bookkeeping drift: [copy_mb] differs from the sum
                         of move sizes
    - [MIG008] (error)   a class sinks below its replica floor
                         [min (k+1) (initial) (final)] at some step boundary
    - [MIG009] (error)   a class served before and after the migration
                         loses its last live replica mid-move
    - [MIG010] (warning) duplicate move (same fragment copied twice to the
                         same backend)

    Schedule codes:
    - [SCH001] (error)   non-positive bandwidth
    - [SCH002] (error)   a copy ships faster than the per-stream throttle
                         allows ([finish - start < size / bandwidth])
    - [SCH003] (error)   two copies overlap on one stream (same source or
                         destination busy twice at once)
    - [SCH004] (error)   the drop barrier fires before the last copy ends
    - [SCH005] (error)   the timed moves are not exactly the plan's moves
    - [SCH006] (error)   a copy starts before the schedule does

    Delta codes:
    - [DLT001] (error)   an open capture has no corresponding copy in the
                         plan (captured updates would never be replayed) *)

open Cdbs_core

val check_plan :
  ?k:int -> workload:Workload.t -> Cdbs_migration.Planner.plan ->
  Diagnostic.t list
(** Verify plan structure and replay the step sequence (every copy, then
    the drop barrier) tracking each class's live replica count.  [k]
    defaults to 0. *)

val check_schedule : Cdbs_migration.Schedule.t -> Diagnostic.t list
(** Verify the timed realization: throttle respected, streams serialized,
    drops after the last copy, moves consistent with the plan. *)

val check_delta :
  plan:Cdbs_migration.Planner.plan -> 'a Cdbs_migration.Delta.t ->
  Diagnostic.t list
(** Verify every open capture corresponds to a copy the plan calls for. *)

val check_plan_exn :
  ?k:int -> context:string -> workload:Workload.t ->
  Cdbs_migration.Planner.plan -> unit
(** Raise {!Cdbs_core.Invariants.Violation} listing all error-severity plan
    findings. *)

val check_schedule_exn : context:string -> Cdbs_migration.Schedule.t -> unit
(** Raise {!Cdbs_core.Invariants.Violation} listing all error-severity
    schedule findings. *)
