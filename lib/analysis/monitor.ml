module Trace = Cdbs_telemetry.Trace
module Sink = Cdbs_telemetry.Sink

(* Per-run protocol view of one backend.  [Stale] is up-but-catching-up:
   it takes updates and replay work, but must not serve reads.
   [Partitioned] is isolated by a network partition: no work of any kind
   may be booked on it.  [Fenced] is healed-but-not-caught-up: like
   [Stale], but the rejoin is guarded by a monotonic epoch token and must
   end with an explicit ["backend.fence_lift"]. *)
type backend_state = Up | Down | Stale | Partitioned | Fenced

type t = {
  (* Accumulated findings, newest first; [per_code] caps how many are
     kept verbatim so a systematically corrupted trace cannot blow up
     the report. *)
  mutable diags : Diagnostic.t list;
  per_code : (string, int) Hashtbl.t;
  mutable errors : int;
  mutable seen : int;
  (* Per-run protocol state, reset at every ["run.start"]. *)
  backends : (int, backend_state) Hashtbl.t;
  breakers : (int, string) Hashtbl.t;
  retries : (int, int * float) Hashtbl.t;  (* uid -> last attempt, remaining *)
  hedges : (int, unit) Hashtbl.t;  (* uids with an armed, unconsumed hedge *)
  spans : (string, int) Hashtbl.t;  (* base name -> starts - ends *)
  floors : (string, int) Hashtbl.t;  (* class id -> migration replica floor *)
  epochs : (int, int) Hashtbl.t;  (* backend -> fencing epoch of last heal *)
  (* Control-loop state.  A control session spans many windows — each of
     which is its own simulator run emitting ["run.start"] — so these
     fields survive [reset_run] and reset only at ["control.session"]. *)
  mutable ctl_active : int option;  (* reallocation id in flight *)
  mutable ctl_breach : bool;  (* guardrail breach seen since realloc start *)
  mutable ctl_last_action : float;  (* time of last commit/rollback *)
  mutable attachments : (Trace.t * Trace.subscription) list;
}

let max_kept_per_code = 50

let create () =
  {
    diags = [];
    per_code = Hashtbl.create 8;
    errors = 0;
    seen = 0;
    backends = Hashtbl.create 8;
    breakers = Hashtbl.create 8;
    retries = Hashtbl.create 64;
    hedges = Hashtbl.create 16;
    spans = Hashtbl.create 8;
    floors = Hashtbl.create 8;
    epochs = Hashtbl.create 8;
    ctl_active = None;
    ctl_breach = false;
    ctl_last_action = neg_infinity;
    attachments = [];
  }

let add t (d : Diagnostic.t) =
  let n = try Hashtbl.find t.per_code d.Diagnostic.code with Not_found -> 0 in
  Hashtbl.replace t.per_code d.Diagnostic.code (n + 1);
  if d.Diagnostic.severity = Diagnostic.Error then t.errors <- t.errors + 1;
  if n < max_kept_per_code then t.diags <- d :: t.diags
  else if n = max_kept_per_code then
    t.diags <-
      Diagnostic.info ~code:d.Diagnostic.code ~subject:"monitor"
        "further %s diagnostics suppressed after %d occurrences"
        d.Diagnostic.code max_kept_per_code
      :: t.diags

let reset_run t =
  Hashtbl.reset t.backends;
  Hashtbl.reset t.breakers;
  Hashtbl.reset t.retries;
  Hashtbl.reset t.hedges;
  Hashtbl.reset t.spans;
  Hashtbl.reset t.floors;
  Hashtbl.reset t.epochs

let state t b = try Hashtbl.find t.backends b with Not_found -> Up
let breaker_state t b = try Hashtbl.find t.breakers b with Not_found -> "closed"

(* ------------------------------------------------------------------ *)
(* Attribute access; a protocol event missing a required attribute is   *)
(* itself a finding (TRC011), not a crash.                              *)
(* ------------------------------------------------------------------ *)

let attr (e : Trace.event) key = List.assoc_opt key e.Trace.attrs

let missing t (e : Trace.event) key =
  add t
    (Diagnostic.warning ~code:"TRC011" ~subject:("event " ^ e.Trace.name)
       ~data:[ ("at", Diagnostic.Num e.Trace.at) ]
       "protocol event lacks required attribute %S" key)

let int_attr t e key k =
  match attr e key with
  | Some (Trace.Int i) -> k i
  | _ -> missing t e key

let str_attr t e key k =
  match attr e key with Some (Trace.Str s) -> k s | _ -> missing t e key

let opt_float e key =
  match attr e key with Some (Trace.Float f) -> Some f | _ -> None

let float_attr t e key k =
  match attr e key with Some (Trace.Float f) -> k f | _ -> missing t e key

let bsub b = Printf.sprintf "backend B%d" (b + 1)

(* ------------------------------------------------------------------ *)
(* The invariant library                                                *)
(* ------------------------------------------------------------------ *)

let on_crash t (e : Trace.event) =
  int_attr t e "backend" @@ fun b ->
  (match state t b with
  | Down | Partitioned ->
      add t
        (Diagnostic.error ~code:"TRC001" ~subject:(bsub b)
           ~data:[ ("at", Diagnostic.Num e.Trace.at) ]
           "crash at %g of a backend that is already out of service"
           e.Trace.at)
  | Up | Stale | Fenced -> ());
  Hashtbl.replace t.backends b Down

let on_recover t (e : Trace.event) =
  int_attr t e "backend" @@ fun b ->
  (match state t b with
  | Down -> ()
  | Partitioned ->
      add t
        (Diagnostic.error ~code:"TRC013" ~subject:(bsub b)
           ~data:[ ("at", Diagnostic.Num e.Trace.at) ]
           "partitioned backend rejoined at %g via plain recovery, \
            bypassing the heal fence"
           e.Trace.at)
  | Up | Stale | Fenced ->
      add t
        (Diagnostic.error ~code:"TRC002" ~subject:(bsub b)
           ~data:[ ("at", Diagnostic.Num e.Trace.at) ]
           "recovery at %g of a backend that is not down" e.Trace.at));
  let replay = match opt_float e "replay_mb" with Some m -> m | None -> 0. in
  Hashtbl.replace t.backends b (if replay > 0. then Stale else Up)

let on_catchup_done t (e : Trace.event) =
  int_attr t e "backend" @@ fun b ->
  (match state t b with
  | Stale -> ()
  | Fenced ->
      add t
        (Diagnostic.error ~code:"TRC015" ~subject:(bsub b)
           ~data:[ ("at", Diagnostic.Num e.Trace.at) ]
           "fenced backend finished catch-up at %g without lifting its \
            fence (expected backend.fence_lift)"
           e.Trace.at)
  | Up | Down | Partitioned ->
      add t
        (Diagnostic.error ~code:"TRC005" ~subject:(bsub b)
           ~data:[ ("at", Diagnostic.Num e.Trace.at) ]
           "catch-up completion at %g with no catch-up pending" e.Trace.at));
  if state t b = Stale then Hashtbl.replace t.backends b Up

let on_partition t (e : Trace.event) =
  int_attr t e "backend" @@ fun b ->
  (match state t b with
  | Down ->
      add t
        (Diagnostic.error ~code:"TRC013" ~subject:(bsub b)
           ~data:[ ("at", Diagnostic.Num e.Trace.at) ]
           "partition at %g of a backend that is already down" e.Trace.at)
  | Partitioned ->
      add t
        (Diagnostic.error ~code:"TRC013" ~subject:(bsub b)
           ~data:[ ("at", Diagnostic.Num e.Trace.at) ]
           "partition at %g of a backend that is already partitioned"
           e.Trace.at)
  | Up | Stale | Fenced -> ());
  Hashtbl.replace t.backends b Partitioned

let epoch_of t b = try Hashtbl.find t.epochs b with Not_found -> 0

let on_heal t (e : Trace.event) =
  int_attr t e "backend" @@ fun b ->
  int_attr t e "epoch" @@ fun ep ->
  (match state t b with
  | Partitioned -> ()
  | Up | Down | Stale | Fenced ->
      add t
        (Diagnostic.error ~code:"TRC013" ~subject:(bsub b)
           ~data:[ ("at", Diagnostic.Num e.Trace.at) ]
           "heal at %g of a backend that is not partitioned" e.Trace.at));
  let prev = epoch_of t b in
  if ep <= prev then
    add t
      (Diagnostic.error ~code:"TRC014" ~subject:(bsub b)
         ~data:
           [
             ("at", Diagnostic.Num e.Trace.at);
             ("epoch", Diagnostic.Int ep);
             ("previous", Diagnostic.Int prev);
           ]
         "heal at %g carries epoch %d, not above the previous epoch %d \
          (fencing tokens must be monotonic)"
         e.Trace.at ep prev);
  Hashtbl.replace t.epochs b ep;
  (* Healed backends are fenced until an explicit fence_lift, however
     little they missed — the lift may share the heal's timestamp. *)
  Hashtbl.replace t.backends b Fenced

let on_fence_lift t (e : Trace.event) =
  int_attr t e "backend" @@ fun b ->
  int_attr t e "epoch" @@ fun ep ->
  (match state t b with
  | Fenced -> ()
  | Up | Down | Stale | Partitioned ->
      add t
        (Diagnostic.error ~code:"TRC015" ~subject:(bsub b)
           ~data:[ ("at", Diagnostic.Num e.Trace.at) ]
           "fence lift at %g of a backend that is not fenced" e.Trace.at));
  let heal_ep = epoch_of t b in
  if ep <> heal_ep then
    add t
      (Diagnostic.error ~code:"TRC014" ~subject:(bsub b)
         ~data:
           [
             ("at", Diagnostic.Num e.Trace.at);
             ("epoch", Diagnostic.Int ep);
             ("heal_epoch", Diagnostic.Int heal_ep);
           ]
         "fence lift at %g carries epoch %d, but the heal minted epoch %d"
         e.Trace.at ep heal_ep);
  if state t b = Fenced then Hashtbl.replace t.backends b Up

let legal_breaker_hop from to_ =
  match (from, to_) with
  | "closed", "open" -> true
  | "open", "half_open" -> true
  | "half_open", ("closed" | "open") -> true
  | _ -> false

let on_breaker t (e : Trace.event) =
  int_attr t e "backend" @@ fun b ->
  str_attr t e "state" @@ fun to_ ->
  let from = breaker_state t b in
  if not (legal_breaker_hop from to_) then
    add t
      (Diagnostic.error ~code:"TRC004" ~subject:(bsub b)
         ~data:
           [
             ("at", Diagnostic.Num e.Trace.at);
             ("from", Diagnostic.Str from);
             ("to", Diagnostic.Str to_);
           ]
         "breaker transition %s -> %s at %g is off the legal \
          Closed -> Open -> Half-open graph"
         from to_ e.Trace.at);
  Hashtbl.replace t.breakers b to_

let on_serve t (e : Trace.event) =
  int_attr t e "backend" @@ fun b ->
  str_attr t e "kind" @@ fun kind ->
  (match state t b with
  | Down ->
      add t
        (Diagnostic.error ~code:"TRC003" ~subject:(bsub b)
           ~data:
             [
               ("at", Diagnostic.Num e.Trace.at);
               ("kind", Diagnostic.Str kind);
             ]
           "%s work booked at %g on a crashed backend" kind e.Trace.at)
  | Partitioned ->
      add t
        (Diagnostic.error ~code:"TRC013" ~subject:(bsub b)
           ~data:
             [
               ("at", Diagnostic.Num e.Trace.at);
               ("kind", Diagnostic.Str kind);
             ]
           "%s work booked at %g on a partitioned backend (nothing may \
            reach an isolated node)"
           kind e.Trace.at)
  | Fenced when String.equal kind "read" ->
      add t
        (Diagnostic.error ~code:"TRC015" ~subject:(bsub b)
           ~data:[ ("at", Diagnostic.Num e.Trace.at) ]
           "read served at %g on a fenced backend (stale serve after a \
            partition heal: split-brain)"
           e.Trace.at)
  | Stale when String.equal kind "read" ->
      add t
        (Diagnostic.error ~code:"TRC005" ~subject:(bsub b)
           ~data:[ ("at", Diagnostic.Num e.Trace.at) ]
           "read served at %g on a stale backend (rejoin not gated on \
            catch-up)"
           e.Trace.at)
  | _ -> ());
  match (opt_float e "start", opt_float e "finish") with
  | Some s, Some f when f < s ->
      add t
        (Diagnostic.error ~code:"TRC011" ~subject:(bsub b)
           ~data:
             [ ("start", Diagnostic.Num s); ("finish", Diagnostic.Num f) ]
           "service interval finishes at %g before it starts at %g" f s)
  | _ -> ()

let on_request_retry t (e : Trace.event) =
  int_attr t e "uid" @@ fun uid ->
  int_attr t e "attempt" @@ fun attempt ->
  let subject = Printf.sprintf "request #%d" uid in
  let remaining =
    match opt_float e "remaining_s" with Some r -> r | None -> nan
  in
  (match attr e "retry_at" with
  | Some (Trace.Float at) when at < e.Trace.at ->
      add t
        (Diagnostic.error ~code:"TRC007" ~subject
           ~data:
             [
               ("at", Diagnostic.Num e.Trace.at);
               ("retry_at", Diagnostic.Num at);
             ]
           "retry scheduled at %g, before the failure at %g" at e.Trace.at)
  | _ -> ());
  (if attempt < 1 then
     add t
       (Diagnostic.error ~code:"TRC007" ~subject
          ~data:[ ("attempt", Diagnostic.Int attempt) ]
          "retry carries attempt %d (first retry is attempt 1)" attempt));
  (match Hashtbl.find_opt t.retries uid with
  | None -> ()
  | Some (prev_attempt, prev_remaining) ->
      if attempt <= prev_attempt then
        add t
          (Diagnostic.error ~code:"TRC007" ~subject
             ~data:
               [
                 ("attempt", Diagnostic.Int attempt);
                 ("previous", Diagnostic.Int prev_attempt);
               ]
             "attempt counter went %d -> %d across retries" prev_attempt
             attempt);
      if
        (not (Float.is_nan remaining))
        && (not (Float.is_nan prev_remaining))
        && remaining >= prev_remaining
      then
        add t
          (Diagnostic.error ~code:"TRC007" ~subject
             ~data:
               [
                 ("remaining_s", Diagnostic.Num remaining);
                 ("previous_s", Diagnostic.Num prev_remaining);
               ]
             "deadline budget grew %g s -> %g s across retries (budgets \
              must be monotonically decreasing)"
             prev_remaining remaining));
  Hashtbl.replace t.retries uid (attempt, remaining)

let on_hedge_armed t (e : Trace.event) =
  int_attr t e "uid" @@ fun uid ->
  (match attr e "fire_at" with
  | Some (Trace.Float at) when at < e.Trace.at ->
      add t
        (Diagnostic.error ~code:"TRC009"
           ~subject:(Printf.sprintf "request #%d" uid)
           ~data:
             [
               ("at", Diagnostic.Num e.Trace.at);
               ("fire_at", Diagnostic.Num at);
             ]
           "hedge armed at %g to fire in the past at %g" e.Trace.at at)
  | _ -> ());
  Hashtbl.replace t.hedges uid ()

let on_hedge_win t (e : Trace.event) =
  int_attr t e "uid" @@ fun uid ->
  if Hashtbl.mem t.hedges uid then Hashtbl.remove t.hedges uid
  else
    add t
      (Diagnostic.error ~code:"TRC009"
         ~subject:(Printf.sprintf "request #%d" uid)
         ~data:[ ("at", Diagnostic.Num e.Trace.at) ]
         "hedge win at %g with no armed hedge for this request" e.Trace.at)

let on_summary t (e : Trace.event) =
  int_attr t e "offered" @@ fun offered ->
  int_attr t e "completed" @@ fun completed ->
  int_attr t e "aborted" @@ fun aborted ->
  int_attr t e "shed" @@ fun shed ->
  int_attr t e "timeouts" @@ fun timeouts ->
  int_attr t e "hedged" @@ fun hedged ->
  int_attr t e "hedge_wins" @@ fun hedge_wins ->
  int_attr t e "offered_updates" @@ fun offered_updates ->
  int_attr t e "completed_updates" @@ fun completed_updates ->
  let conservation cond fmt =
    Printf.ksprintf
      (fun msg ->
        if not cond then
          add t
            (Diagnostic.error ~code:"TRC008" ~subject:"run"
               ~data:
                 [
                   ("offered", Diagnostic.Int offered);
                   ("completed", Diagnostic.Int completed);
                   ("aborted", Diagnostic.Int aborted);
                   ("shed", Diagnostic.Int shed);
                 ]
               "%s" msg))
      fmt
  in
  conservation
    (completed + aborted = offered)
    "conservation broken: completed %d + aborted %d <> offered %d" completed
    aborted offered;
  conservation (shed <= aborted)
    "shed %d exceeds aborted %d (every shed is an abort)" shed aborted;
  conservation (timeouts <= aborted)
    "timeouts %d exceed aborted %d (every timeout is an abort)" timeouts
    aborted;
  conservation
    (completed_updates <= offered_updates)
    "completed updates %d exceed offered updates %d" completed_updates
    offered_updates;
  if hedge_wins > hedged then
    add t
      (Diagnostic.error ~code:"TRC009" ~subject:"run"
         ~data:
           [
             ("hedged", Diagnostic.Int hedged);
             ("hedge_wins", Diagnostic.Int hedge_wins);
           ]
         "hedge wins %d exceed hedges issued %d" hedge_wins hedged)

let on_migration_floor t (e : Trace.event) =
  str_attr t e "class" @@ fun cls ->
  int_attr t e "floor" @@ fun floor -> Hashtbl.replace t.floors cls floor

let on_migration_live t (e : Trace.event) =
  str_attr t e "class" @@ fun cls ->
  int_attr t e "replicas" @@ fun replicas ->
  match Hashtbl.find_opt t.floors cls with
  | Some floor when replicas < floor ->
      add t
        (Diagnostic.error ~code:"TRC006" ~subject:("class " ^ cls)
           ~data:
             [
               ("at", Diagnostic.Num e.Trace.at);
               ("replicas", Diagnostic.Int replicas);
               ("floor", Diagnostic.Int floor);
             ]
           "live replicas fell to %d at %g, below the expand-then-contract \
            floor of %d"
           replicas e.Trace.at floor)
  | _ -> ()

(* --- Control loop (TRC016/TRC017/TRC018) --------------------------- *)

let on_control_session t (_e : Trace.event) =
  t.ctl_active <- None;
  t.ctl_breach <- false;
  t.ctl_last_action <- neg_infinity

let on_control_trigger t (e : Trace.event) =
  (match t.ctl_active with
  | Some id ->
      add t
        (Diagnostic.error ~code:"TRC016" ~subject:"control"
           ~data:
             [
               ("at", Diagnostic.Num e.Trace.at);
               ("in_flight", Diagnostic.Int id);
             ]
           "drift trigger at %g while reallocation %d is still in flight"
           e.Trace.at id)
  | None -> ());
  float_attr t e "cooldown_s" @@ fun cooldown_s ->
  if e.Trace.at < t.ctl_last_action +. cooldown_s then
    add t
      (Diagnostic.error ~code:"TRC017" ~subject:"control"
         ~data:
           [
             ("at", Diagnostic.Num e.Trace.at);
             ("last_action", Diagnostic.Num t.ctl_last_action);
             ("cooldown_s", Diagnostic.Num cooldown_s);
           ]
         "drift trigger at %g inside the post-action cooldown (last action \
          %g + cooldown %g s)"
         e.Trace.at t.ctl_last_action cooldown_s)

let on_control_realloc_start t (e : Trace.event) =
  int_attr t e "id" @@ fun id ->
  (match t.ctl_active with
  | Some prev ->
      add t
        (Diagnostic.error ~code:"TRC016" ~subject:"control"
           ~data:
             [
               ("at", Diagnostic.Num e.Trace.at);
               ("id", Diagnostic.Int id);
               ("in_flight", Diagnostic.Int prev);
             ]
           "reallocation %d started at %g while reallocation %d is still in \
            flight"
           id e.Trace.at prev)
  | None -> ());
  t.ctl_active <- Some id;
  t.ctl_breach <- false

let on_control_breach t (_e : Trace.event) =
  if t.ctl_active <> None then t.ctl_breach <- true

let ctl_finish t (e : Trace.event) ~what ~needs_breach =
  int_attr t e "id" @@ fun id ->
  (match t.ctl_active with
  | None ->
      add t
        (Diagnostic.error ~code:"TRC016" ~subject:"control"
           ~data:
             [
               ("at", Diagnostic.Num e.Trace.at); ("id", Diagnostic.Int id);
             ]
           "%s of reallocation %d at %g with no reallocation in flight" what
           id e.Trace.at)
  | Some active when active <> id ->
      add t
        (Diagnostic.error ~code:"TRC016" ~subject:"control"
           ~data:
             [
               ("at", Diagnostic.Num e.Trace.at);
               ("id", Diagnostic.Int id);
               ("in_flight", Diagnostic.Int active);
             ]
           "%s names reallocation %d at %g but reallocation %d is in flight"
           what id e.Trace.at active)
  | Some _ -> ());
  if needs_breach && not t.ctl_breach then
    add t
      (Diagnostic.error ~code:"TRC018" ~subject:"control"
         ~data:
           [ ("at", Diagnostic.Num e.Trace.at); ("id", Diagnostic.Int id) ]
         "rollback of reallocation %d at %g with no guardrail breach since \
          it started"
         id e.Trace.at);
  t.ctl_active <- None;
  t.ctl_breach <- false;
  t.ctl_last_action <- e.Trace.at

let on_control_rollback t e = ctl_finish t e ~what:"rollback" ~needs_breach:true

let on_control_commit t e = ctl_finish t e ~what:"commit" ~needs_breach:false

(* Span pairing is purely name-suffix driven, so it covers user spans as
   well as engine events.  Unclosed spans are deliberately not flagged:
   experiment-level events such as ["migration.start"] legitimately have
   no matching end. *)
let on_span t (e : Trace.event) =
  let name = e.Trace.name in
  if Filename.check_suffix name ".start" then
    let base = Filename.chop_suffix name ".start" in
    let n = try Hashtbl.find t.spans base with Not_found -> 0 in
    Hashtbl.replace t.spans base (n + 1)
  else if Filename.check_suffix name ".end" then begin
    let base = Filename.chop_suffix name ".end" in
    let n = try Hashtbl.find t.spans base with Not_found -> 0 in
    if n <= 0 then
      add t
        (Diagnostic.error ~code:"TRC010" ~subject:("span " ^ base)
           ~data:[ ("at", Diagnostic.Num e.Trace.at) ]
           "span end at %g without a matching start" e.Trace.at)
    else Hashtbl.replace t.spans base (n - 1);
    match opt_float e "duration_s" with
    | Some d when d < 0. ->
        add t
          (Diagnostic.error ~code:"TRC010" ~subject:("span " ^ base)
             ~data:[ ("duration_s", Diagnostic.Num d) ]
             "span closed with negative duration %g s" d)
    | _ -> ()
  end

let observe t (e : Trace.event) =
  t.seen <- t.seen + 1;
  if (not (Float.is_finite e.Trace.at)) || e.Trace.at < 0. then
    add t
      (Diagnostic.error ~code:"TRC011" ~subject:("event " ^ e.Trace.name)
         ~data:[ ("at", Diagnostic.Num e.Trace.at) ]
         "event carries a non-finite or negative timestamp %g" e.Trace.at);
  on_span t e;
  match e.Trace.name with
  | "run.start" -> reset_run t
  | "backend.crash" -> on_crash t e
  | "backend.recover" -> on_recover t e
  | "backend.catchup_done" -> on_catchup_done t e
  | "backend.partition" -> on_partition t e
  | "backend.heal" -> on_heal t e
  | "backend.fence_lift" -> on_fence_lift t e
  | "backend.serve" -> on_serve t e
  | "breaker.transition" -> on_breaker t e
  | "request.retry" -> on_request_retry t e
  | "request.hedge_armed" -> on_hedge_armed t e
  | "request.hedge_win" -> on_hedge_win t e
  | "run.summary" -> on_summary t e
  | "migration.floor" -> on_migration_floor t e
  | "migration.live" -> on_migration_live t e
  | "control.session" -> on_control_session t e
  | "control.trigger" -> on_control_trigger t e
  | "control.reallocate.start" -> on_control_realloc_start t e
  | "control.breach" -> on_control_breach t e
  | "control.rollback" -> on_control_rollback t e
  | "control.commit" -> on_control_commit t e
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Attachment                                                           *)
(* ------------------------------------------------------------------ *)

let attach t (sink : Sink.t) =
  let trace = sink.Sink.trace in
  if List.exists (fun (tr, _) -> tr == trace) t.attachments then false
  else begin
    let sub = Trace.subscribe trace (fun e -> observe t e) in
    t.attachments <- (trace, sub) :: t.attachments;
    true
  end

let detach t (sink : Sink.t) =
  let trace = sink.Sink.trace in
  match List.find_opt (fun (tr, _) -> tr == trace) t.attachments with
  | None -> ()
  | Some (_, sub) ->
      Trace.unsubscribe trace sub;
      t.attachments <- List.filter (fun (tr, _) -> tr != trace) t.attachments

(* ------------------------------------------------------------------ *)
(* Reporting                                                            *)
(* ------------------------------------------------------------------ *)

let events_seen t = t.seen
let violations t = t.errors
let clean t = t.errors = 0

let report t =
  let overflow =
    List.filter_map
      (fun (trace, _) ->
        let d = Trace.dropped trace in
        if d > 0 then
          Some
            (Diagnostic.warning ~code:"TRC012" ~subject:"trace"
               ~data:
                 [
                   ("dropped", Diagnostic.Int d);
                   ("retained", Diagnostic.Int (Trace.length trace));
                 ]
               "trace ring overflowed: %d events evicted (the monitor saw \
                every event; ring consumers saw a suffix)"
               d)
        else None)
      t.attachments
  in
  Diagnostic.sort (overflow @ List.rev t.diags)

let check_exn ~context t =
  if t.errors > 0 then
    failwith
      (Fmt.str "%s: protocol monitor found %d violation(s)@\n%a" context
         t.errors Diagnostic.pp_report (report t))
