(** Resilience-policy sanity lints ([RES*] namespace).

    The {!Cdbs_resilience} record types are public, so a policy bundle can
    be assembled with parameters the [make] smart constructors would have
    rejected — or with parameters that are individually valid but jointly
    useless (a hedge delay floor past the deadline budget can never fire;
    an error threshold finer than the sample window trips on any single
    failure).  This checker re-validates every parameter and cross-checks
    the defenses against each other:

    - [RES001] hedge delay floor at or past the deadline budget
    - [RES002] admission pending watermark at or past the deadline budget
      (admits work whose client is gone)
    - [RES003] breaker error threshold finer than its sample window (one
      failure in a full window trips)
    - [RES004] hedge percentile below the median (hedges most reads)
    - [RES005] (info) every defense disabled
    - [RES006] invalid admission parameters
    - [RES007] invalid breaker parameters
    - [RES008] invalid hedge parameters
    - [RES009] invalid deadline parameters *)

val check : Cdbs_resilience.Policy.t -> Diagnostic.t list
(** Diagnostics in {!Diagnostic.sort} order; empty means the bundle is
    sane.  Disabled defenses are skipped (except [RES005]). *)
