open Cdbs_core
module Planner = Cdbs_migration.Planner
module Schedule = Cdbs_migration.Schedule
module Delta = Cdbs_migration.Delta
module D = Diagnostic

let move_subject (m : Planner.move) =
  Fmt.str "move %s->B%d" (Fragment.name m.Planner.fragment) m.Planner.dest

let drop_subject (d : Planner.drop) =
  Fmt.str "drop %s@B%d" (Fragment.name d.Planner.victim) d.Planner.at_backend

(* ------------------------------------------------------------------ *)
(* Plan structure                                                      *)
(* ------------------------------------------------------------------ *)

let check_moves (plan : Planner.plan) =
  let n = plan.Planner.num_physical in
  let seen = Hashtbl.create 16 in
  List.concat_map
    (fun (m : Planner.move) ->
      let subject = move_subject m in
      let range_errs =
        (if m.Planner.dest < 0 || m.Planner.dest >= n then
           [
             D.error ~code:"MIG001" ~subject
               ~data:[ ("dest", D.Int m.Planner.dest); ("nodes", D.Int n) ]
               "destination B%d outside the %d live physical nodes"
               m.Planner.dest n;
           ]
         else [])
        @
        match m.Planner.source with
        | Some u when u < 0 || u >= n ->
            [
              D.error ~code:"MIG001" ~subject
                ~data:[ ("source", D.Int u); ("nodes", D.Int n) ]
                "source B%d outside the %d live physical nodes" u n;
            ]
        | _ -> []
      in
      if range_errs <> [] then range_errs
      else begin
        let errs = ref [] in
        (match m.Planner.source with
        | Some u
          when not
                 (Fragment.Set.mem m.Planner.fragment plan.Planner.old_sets.(u))
          ->
            errs :=
              D.error ~code:"MIG002" ~subject
                ~data:[ ("source", D.Int u) ]
                "source B%d does not hold %s when the migration starts" u
                (Fragment.name m.Planner.fragment)
              :: !errs
        | _ -> ());
        if Fragment.Set.mem m.Planner.fragment plan.Planner.old_sets.(m.Planner.dest)
        then
          errs :=
            D.warning ~code:"MIG003" ~subject
              "destination already holds the fragment (redundant copy)"
            :: !errs;
        let key = (m.Planner.dest, m.Planner.fragment) in
        if Hashtbl.mem seen key then
          errs :=
            D.warning ~code:"MIG010" ~subject
              "fragment copied twice to the same backend"
            :: !errs
        else Hashtbl.replace seen key ();
        !errs
      end)
    plan.Planner.moves

let check_drops (plan : Planner.plan) =
  let n = plan.Planner.num_physical in
  List.concat_map
    (fun (d : Planner.drop) ->
      let subject = drop_subject d in
      if d.Planner.at_backend < 0 || d.Planner.at_backend >= n then
        [
          D.error ~code:"MIG001" ~subject
            ~data:[ ("backend", D.Int d.Planner.at_backend); ("nodes", D.Int n) ]
            "dropping backend B%d outside the %d live physical nodes"
            d.Planner.at_backend n;
        ]
      else begin
        let errs = ref [] in
        if
          not
            (Fragment.Set.mem d.Planner.victim
               plan.Planner.old_sets.(d.Planner.at_backend))
        then
          errs :=
            D.error ~code:"MIG004" ~subject
              "backend never stored the fragment it is told to drop"
            :: !errs;
        if
          List.exists
            (fun (m : Planner.move) ->
              m.Planner.dest = d.Planner.at_backend
              && Fragment.equal m.Planner.fragment d.Planner.victim)
            plan.Planner.moves
        then
          errs :=
            D.error ~code:"MIG005" ~subject
              "fragment is both copied to and dropped at the same backend"
            :: !errs;
        !errs
      end)
    plan.Planner.drops

(* (old ∪ copies) \ drops must equal the declared target, per backend. *)
let check_placement_equation (plan : Planner.plan) =
  let n = plan.Planner.num_physical in
  let reached = Array.copy plan.Planner.old_sets in
  List.iter
    (fun (m : Planner.move) ->
      if m.Planner.dest >= 0 && m.Planner.dest < n then
        reached.(m.Planner.dest) <-
          Fragment.Set.add m.Planner.fragment reached.(m.Planner.dest))
    plan.Planner.moves;
  List.iter
    (fun (d : Planner.drop) ->
      if d.Planner.at_backend >= 0 && d.Planner.at_backend < n then
        reached.(d.Planner.at_backend) <-
          Fragment.Set.remove d.Planner.victim reached.(d.Planner.at_backend))
    plan.Planner.drops;
  let out = ref [] in
  for p = 0 to n - 1 do
    let target = plan.Planner.target_sets.(p) in
    let missing = Fragment.Set.diff target reached.(p) in
    let extra = Fragment.Set.diff reached.(p) target in
    if not (Fragment.Set.is_empty missing && Fragment.Set.is_empty extra) then begin
      let names s =
        String.concat ", " (List.map Fragment.name (Fragment.Set.elements s))
      in
      out :=
        D.error ~code:"MIG006" ~subject:(Fmt.str "backend B%d" p)
          ~data:
            [
              ("missing", D.Str (names missing));
              ("extra", D.Str (names extra));
            ]
          "executing the plan does not reach the target placement \
           (missing: {%s}; extra: {%s})"
          (names missing) (names extra)
        :: !out
    end
  done;
  !out

let check_bookkeeping (plan : Planner.plan) =
  let sum =
    List.fold_left (fun acc (m : Planner.move) -> acc +. m.Planner.size) 0.
      plan.Planner.moves
  in
  if abs_float (sum -. plan.Planner.copy_mb) > Eps.weight then
    [
      D.error ~code:"MIG007" ~subject:"plan"
        ~data:[ ("copy_mb", D.Num plan.Planner.copy_mb); ("sum", D.Num sum) ]
        "declared copy volume %.3f MB differs from the moves' total %.3f MB"
        plan.Planner.copy_mb sum;
    ]
  else []

(* Replay the step sequence (expand move-by-move, contract at the barrier)
   and track every class's live replica count independently of
   Planner.min_live_replicas. *)
let check_replica_floors ~k ~workload (plan : Planner.plan) =
  let n = plan.Planner.num_physical in
  let in_range i = i >= 0 && i < n in
  let classes = Workload.all_classes workload in
  let replicas live (c : Query_class.t) =
    Array.fold_left
      (fun acc set ->
        if Fragment.Set.subset c.Query_class.fragments set then acc + 1
        else acc)
      0 live
  in
  let live = Array.copy plan.Planner.old_sets in
  let initial = List.map (fun c -> replicas live c) classes in
  let mins = Array.of_list initial in
  let observe () =
    List.iteri
      (fun i c ->
        let r = replicas live c in
        if r < mins.(i) then mins.(i) <- r)
      classes
  in
  List.iter
    (fun (m : Planner.move) ->
      if in_range m.Planner.dest then begin
        live.(m.Planner.dest) <-
          Fragment.Set.add m.Planner.fragment live.(m.Planner.dest);
        observe ()
      end)
    plan.Planner.moves;
  List.iter
    (fun (d : Planner.drop) ->
      if in_range d.Planner.at_backend then
        live.(d.Planner.at_backend) <-
          Fragment.Set.remove d.Planner.victim live.(d.Planner.at_backend))
    plan.Planner.drops;
  observe ();
  List.concat
    (List.mapi
       (fun i (c : Query_class.t) ->
         let subject = "class " ^ c.Query_class.id in
         let init = List.nth initial i in
         let final = replicas plan.Planner.target_sets c in
         let floor = min (k + 1) (min init final) in
         let m = mins.(i) in
         (if m < floor then
            [
              D.error ~code:"MIG008" ~subject
                ~data:
                  [
                    ("min_live", D.Int m); ("floor", D.Int floor);
                    ("initial", D.Int init); ("final", D.Int final);
                  ]
                "sinks to %d live replicas during the migration, below its \
                 floor of %d"
                m floor;
            ]
          else [])
         @
         if m < 1 && init >= 1 && final >= 1 then
           [
             D.error ~code:"MIG009" ~subject
               ~data:[ ("initial", D.Int init); ("final", D.Int final) ]
               "loses its last live replica mid-move although it is served \
                before and after";
           ]
         else [])
       classes)

let check_plan ?(k = 0) ~workload plan =
  check_moves plan
  @ check_drops plan
  @ check_placement_equation plan
  @ check_bookkeeping plan
  @ check_replica_floors ~k ~workload plan

(* ------------------------------------------------------------------ *)
(* Schedule                                                            *)
(* ------------------------------------------------------------------ *)

let timed_subject (tm : Schedule.timed_move) = move_subject tm.Schedule.move

let check_schedule (sched : Schedule.t) =
  let plan = sched.Schedule.plan in
  let bw = sched.Schedule.bandwidth in
  let master = plan.Planner.num_physical in
  let streams_of (m : Planner.move) =
    [
      m.Planner.dest;
      (match m.Planner.source with Some u -> u | None -> master);
    ]
  in
  let bw_errs =
    if bw <= 0. then
      [
        D.error ~code:"SCH001" ~subject:"schedule"
          ~data:[ ("bandwidth", D.Num bw) ]
          "non-positive bandwidth %.3f MB/s" bw;
      ]
    else []
  in
  let per_move =
    List.concat_map
      (fun (tm : Schedule.timed_move) ->
        let subject = timed_subject tm in
        let dur = tm.Schedule.finish -. tm.Schedule.start in
        let need =
          if bw > 0. then tm.Schedule.move.Planner.size /. bw else 0.
        in
        (if bw > 0. && dur < need -. Eps.weight then
           [
             D.error ~code:"SCH002" ~subject
               ~data:
                 [
                   ("duration_s", D.Num dur); ("required_s", D.Num need);
                   ("bandwidth", D.Num bw);
                 ]
               "ships %.1f MB in %.3f s — faster than the %.1f MB/s \
                throttle allows (%.3f s)"
               tm.Schedule.move.Planner.size dur bw need;
           ]
         else [])
        @
        if tm.Schedule.start < sched.Schedule.start -. Eps.weight then
          [
            D.error ~code:"SCH006" ~subject
              ~data:
                [
                  ("start", D.Num tm.Schedule.start);
                  ("schedule_start", D.Num sched.Schedule.start);
                ]
              "starts at %.3f s, before the schedule's start %.3f s"
              tm.Schedule.start sched.Schedule.start;
          ]
        else [])
      sched.Schedule.moves
  in
  (* Stream serialization: no two copies may occupy the same stream (a
     physical node, or the master pseudo-stream) at once. *)
  let overlap_errs =
    let moves = Array.of_list sched.Schedule.moves in
    let out = ref [] in
    Array.iteri
      (fun i (a : Schedule.timed_move) ->
        for j = i + 1 to Array.length moves - 1 do
          let b = moves.(j) in
          let shared =
            List.exists
              (fun s -> List.mem s (streams_of b.Schedule.move))
              (streams_of a.Schedule.move)
          in
          if
            shared
            && a.Schedule.start < b.Schedule.finish -. Eps.weight
            && b.Schedule.start < a.Schedule.finish -. Eps.weight
          then
            out :=
              D.error ~code:"SCH003" ~subject:(timed_subject a)
                ~data:[ ("other", D.Str (timed_subject b)) ]
                "overlaps %s on a shared copy stream" (timed_subject b)
              :: !out
        done)
      moves;
    !out
  in
  let barrier_errs =
    let last_finish =
      List.fold_left
        (fun acc (tm : Schedule.timed_move) -> max acc tm.Schedule.finish)
        sched.Schedule.start sched.Schedule.moves
    in
    if sched.Schedule.drops_at < last_finish -. Eps.weight then
      [
        D.error ~code:"SCH004" ~subject:"schedule"
          ~data:
            [
              ("drops_at", D.Num sched.Schedule.drops_at);
              ("last_copy_done", D.Num last_finish);
            ]
          "drop barrier at %.3f s fires before the last copy ends at %.3f s \
           (expand-then-contract broken)"
          sched.Schedule.drops_at last_finish;
      ]
    else []
  in
  (* The timed moves must be exactly the plan's moves. *)
  let key (m : Planner.move) = (m.Planner.dest, m.Planner.fragment) in
  let consistency_errs =
    let planned = List.map key plan.Planner.moves in
    let timed =
      List.map (fun (tm : Schedule.timed_move) -> key tm.Schedule.move)
        sched.Schedule.moves
    in
    let missing = List.filter (fun k -> not (List.mem k timed)) planned in
    let extra = List.filter (fun k -> not (List.mem k planned)) timed in
    List.map
      (fun (dest, f) ->
        D.error ~code:"SCH005"
          ~subject:(Fmt.str "move %s->B%d" (Fragment.name f) dest)
          "planned copy missing from the schedule")
      missing
    @ List.map
        (fun (dest, f) ->
          D.error ~code:"SCH005"
            ~subject:(Fmt.str "move %s->B%d" (Fragment.name f) dest)
            "scheduled copy not present in the plan")
        extra
  in
  bw_errs @ per_move @ overlap_errs @ barrier_errs @ consistency_errs

(* ------------------------------------------------------------------ *)
(* Delta journal                                                       *)
(* ------------------------------------------------------------------ *)

let check_delta ~plan journal =
  List.filter_map
    (fun (dest, fragment) ->
      let planned =
        List.exists
          (fun (m : Planner.move) ->
            m.Planner.dest = dest && Fragment.equal m.Planner.fragment fragment)
          plan.Planner.moves
      in
      if planned then None
      else
        Some
          (D.error ~code:"DLT001"
             ~subject:(Fmt.str "capture %s->B%d" (Fragment.name fragment) dest)
             "open delta capture for a copy the plan never performs — its \
              updates would never be replayed"))
    (Delta.open_captures journal)

let raise_errors ~context = function
  | [] -> ()
  | errs ->
      raise
        (Invariants.Violation
           (context ^ ": "
           ^ String.concat "; "
               (List.map (fun d -> Fmt.str "%a" Diagnostic.pp d) errs)))

let check_plan_exn ?k ~context ~workload plan =
  raise_errors ~context (Diagnostic.errors (check_plan ?k ~workload plan))

let check_schedule_exn ~context sched =
  raise_errors ~context (Diagnostic.errors (check_schedule sched))
