(** Streaming runtime verification over simulation traces.

    The static verifier (PR 2) proves properties of {e plans}; this
    module proves properties of {e runs}.  A monitor subscribes to a
    {!Cdbs_telemetry.Trace} (via {!Cdbs_telemetry.Trace.subscribe}, so it
    observes every event, not just the bounded ring) and evaluates a
    library of temporal invariants over the protocol state machines the
    fault engine, the resilience stack and the migration runner execute —
    the simulation-world equivalent of a thread/address sanitizer for the
    serving stack.  Violations are reported as {!Diagnostic.t} values
    under the [TRC*] namespace:

    - [TRC001] crash of an already-crashed backend
    - [TRC002] recovery of a backend that is not down
    - [TRC003] work booked on a crashed backend (no-op-while-down
      causality)
    - [TRC004] breaker transition off the legal
      Closed→Open→Half-open graph
    - [TRC005] rejoin not gated on delta catch-up: a read served on a
      stale backend, or a catch-up completion with none pending
    - [TRC006] live replicas below the expand-then-contract floor during
      a live migration
    - [TRC007] retry chain not progressing: attempt counter not
      increasing, deadline budget not decreasing, or a retry scheduled in
      the past
    - [TRC008] conservation broken at end of run
      ([completed + aborted = offered], shed/timeouts within aborted,
      updates never over-completed)
    - [TRC009] hedge accounting: a hedge win with no armed hedge (or
      after its arm was consumed), wins exceeding hedges, or a hedge
      armed to fire in the past
    - [TRC010] span pairing: an [.end] event without a matching [.start],
      or a negative span duration
    - [TRC011] event sanity: non-finite or negative timestamp, negative
      service interval, or a protocol event missing a required attribute
    - [TRC012] (warning) the attached trace ring overflowed — the
      retained ring is a suffix; monitors still saw every event
    - [TRC013] partition lifecycle: work booked on a partitioned backend
      (nothing may reach an isolated node), a partition of an
      already-down or already-partitioned backend, a heal of a
      non-partitioned backend, or a partitioned backend rejoining via
      plain recovery (bypassing the heal fence)
    - [TRC014] fencing epochs not monotonic: a heal whose epoch does not
      strictly exceed the backend's previous epoch, or a fence lift
      carrying a different epoch than its heal minted
    - [TRC015] fenced until caught up: a read served on a fenced backend
      (stale serve after a partition heal — split-brain), a fence lift of
      a backend that is not fenced, or a fenced backend completing
      catch-up without lifting its fence
    - [TRC016] no overlapping reallocations: a ["control.reallocate.start"]
      while another reallocation is in flight, a drift trigger fired
      mid-reallocation, or a commit/rollback that names no (or the wrong)
      in-flight reallocation
    - [TRC017] cooldown respected: a ["control.trigger"] timestamped
      inside the post-action cooldown window its own [cooldown_s]
      attribute declares (measured from the last commit or rollback)
    - [TRC018] every rollback pairs with a breach: a ["control.rollback"]
      with no ["control.breach"] observed since its reallocation started

    Monitors are pure observers: they never emit into the trace and never
    perturb the run.  Protocol state (which backends are down or stale,
    breaker states, retry chains, span balances) resets at each
    ["run.start"] event, so one monitor can watch many sequential runs on
    a shared sink — diagnostics accumulate across runs.  Control-loop
    state (TRC016–018) deliberately survives ["run.start"]: a control
    session spans many windows, each of which is its own simulator run;
    it resets only at ["control.session"]. *)

type t

val create : unit -> t

val observe : t -> Cdbs_telemetry.Trace.event -> unit
(** Feed one event.  Normally called via the trace subscription
    ({!attach}); exposed directly so corrupted or synthetic traces can be
    replayed in tests. *)

val attach : t -> Cdbs_telemetry.Sink.t -> bool
(** Subscribe the monitor to the sink's trace.  Returns [true] when the
    monitor was newly attached, [false] when it was already watching that
    trace (attachment is idempotent per trace, so a caller-attached
    monitor passed again to the simulator is not double-subscribed). *)

val detach : t -> Cdbs_telemetry.Sink.t -> unit
(** Undo {!attach}; a monitor that is not attached is left alone. *)

val events_seen : t -> int
(** Events observed so far, across all attachments and runs. *)

val violations : t -> int
(** Error-severity violations recorded so far (cheap; no list walk). *)

val clean : t -> bool
(** [violations t = 0]. *)

val report : t -> Diagnostic.t list
(** All diagnostics in {!Diagnostic.sort} order, including end-of-stream
    findings (ring-overflow warnings for still-attached traces).  Per
    code, only the first occurrences are kept verbatim (a corrupted
    trace can violate one invariant millions of times); an info
    diagnostic marks the suppression point. *)

val check_exn : context:string -> t -> unit
(** @raise Failure with the rendered report when {!violations} is
    positive — the fail-loudly hook behind debug invariants. *)
