type severity = Error | Warning | Info

type value = Str of string | Num of float | Int of int | Bool of bool

type t = {
  severity : severity;
  code : string;
  subject : string;
  message : string;
  data : (string * value) list;
}

let make severity ~code ~subject ?(data = []) message =
  { severity; code; subject; message; data }

let error ~code ~subject ?data fmt =
  Printf.ksprintf (fun m -> make Error ~code ~subject ?data m) fmt

let warning ~code ~subject ?data fmt =
  Printf.ksprintf (fun m -> make Warning ~code ~subject ?data m) fmt

let info ~code ~subject ?data fmt =
  Printf.ksprintf (fun m -> make Info ~code ~subject ?data m) fmt

let severity_label = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let errors ds = List.filter (fun d -> d.severity = Error) ds
let warnings ds = List.filter (fun d -> d.severity = Warning) ds
let has_errors ds = List.exists (fun d -> d.severity = Error) ds

let sort ds =
  List.stable_sort
    (fun a b ->
      let c = Int.compare (severity_rank a.severity) (severity_rank b.severity) in
      if c <> 0 then c
      else
        let c = String.compare a.code b.code in
        if c <> 0 then c else String.compare a.subject b.subject)
    ds

let summary ds =
  let plural n what = Printf.sprintf "%d %s%s" n what (if n = 1 then "" else "s") in
  let ne = List.length (errors ds) and nw = List.length (warnings ds) in
  let ni = List.length ds - ne - nw in
  if ne = 0 && nw = 0 && ni = 0 then "clean"
  else
    String.concat ", "
      (List.filter
         (fun s -> s <> "")
         [
           (if ne > 0 then plural ne "error" else "");
           (if nw > 0 then plural nw "warning" else "");
           (if ni > 0 then plural ni "info" else "");
         ])

let pp ppf d =
  Fmt.pf ppf "%s %s [%s]: %s" (severity_label d.severity) d.code d.subject
    d.message

let pp_report ppf ds =
  List.iter (fun d -> Fmt.pf ppf "%a@." pp d) (sort ds);
  Fmt.pf ppf "%s@." (summary ds)

(* ------------------------------------------------------------------ *)
(* JSON                                                                *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_string s = "\"" ^ json_escape s ^ "\""

let json_value = function
  | Str s -> json_string s
  | Int i -> string_of_int i
  | Bool b -> if b then "true" else "false"
  | Num f ->
      if Float.is_finite f then Printf.sprintf "%.12g" f
      else json_string (Printf.sprintf "%h" f)

let to_json d =
  let fields =
    [
      ("severity", json_string (severity_label d.severity));
      ("code", json_string d.code);
      ("subject", json_string d.subject);
      ("message", json_string d.message);
    ]
    @
    match d.data with
    | [] -> []
    | data ->
        [
          ( "data",
            "{"
            ^ String.concat ","
                (List.map (fun (k, v) -> json_string k ^ ":" ^ json_value v) data)
            ^ "}" );
        ]
  in
  "{" ^ String.concat "," (List.map (fun (k, v) -> json_string k ^ ":" ^ v) fields) ^ "}"

let list_to_json ds =
  "[" ^ String.concat "," (List.map to_json (sort ds)) ^ "]"
