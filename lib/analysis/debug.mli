(** Debug-mode installation of the full verifier.

    [cdbs_core] cannot depend on this library, so its algorithms assert
    through the {!Cdbs_core.Invariants} hook.  {!install} registers the
    full {!Check_allocation} engine there and enables checking, turning
    every [Greedy.allocate] / [Memetic.improve] / controller reallocation
    in the process into a self-verifying run.  The experiments harness
    installs it at load time, so every [fig_*] reproduction checks its own
    plans. *)

val install : unit -> unit
(** Enable {!Cdbs_core.Invariants} and register {!Check_allocation} as its
    allocation hook.  Idempotent. *)

val installed : unit -> bool
