module Fault = Cdbs_faults.Fault
module Chaos = Cdbs_faults.Chaos

let extreme_slowdown = 10.

let check_schedule ?k ?zone_of ~num_backends (schedule : Fault.schedule) =
  match Fault.validate ?zone_of ~num_backends schedule with
  | Error e ->
      [
        Diagnostic.error ~code:"FLT001" ~subject:"schedule"
          "structurally invalid fault schedule: %s" e;
      ]
  | Ok () ->
      let diags = ref [] in
      let add d = diags := d :: !diags in
      let bsub b = Printf.sprintf "backend B%d" (b + 1) in
      (* The correlated kinds expand into crash/recover-shaped windows so
         the down-set walk below covers them: a partitioned backend is as
         unreachable as a crashed one.  Validation already guaranteed the
         windows don't overlap other events, so the expansion preserves
         per-backend alternation. *)
      let members_of { Fault.at = _; event } =
        match event with
        | Fault.Partition { backends = bs; _ } -> bs
        | Fault.ZoneOutage { zone; duration = _ } -> (
            match zone_of with
            | None -> []
            | Some zs ->
                let acc = ref [] in
                Array.iteri (fun b z -> if z = zone then acc := b :: !acc) zs;
                List.rev !acc)
        | _ -> []
      in
      let expand ({ Fault.at; event } as te) =
        match event with
        | Fault.Partition { duration; _ } | Fault.ZoneOutage { duration; _ }
          ->
            let bs = members_of te in
            if List.length bs >= num_backends then
              add
                (Diagnostic.warning ~code:"FLT009" ~subject:"schedule"
                   ~data:[ ("at", Diagnostic.Num at) ]
                   "correlated fault at %g isolates every backend: a \
                    whole-cluster blackout no placement can survive"
                   at);
            List.concat_map
              (fun b ->
                [ Fault.crash ~at b; Fault.recover ~at:(at +. duration) b ])
              bs
        | _ -> [ te ]
      in
      (* Walk the validated (hence alternation-correct) timeline tracking
         the down set. *)
      let down_at = Array.make (max 1 num_backends) nan in
      let cur_down = ref 0 and peak_down = ref 0 and peak_at = ref 0. in
      List.iter
        (fun { Fault.at; event } ->
          match event with
          | Fault.Crash b ->
              down_at.(b) <- at;
              incr cur_down;
              if !cur_down > !peak_down then begin
                peak_down := !cur_down;
                peak_at := at
              end
          | Fault.Recover b ->
              if at <= down_at.(b) then
                add
                  (Diagnostic.warning ~code:"FLT007" ~subject:(bsub b)
                     ~data:[ ("at", Diagnostic.Num at) ]
                     "zero-length down window at %g: the crash is a no-op \
                      fault"
                     at);
              down_at.(b) <- nan;
              decr cur_down
          | Fault.Slowdown { backend = b; factor; _ } ->
              if factor >= extreme_slowdown then
                add
                  (Diagnostic.warning ~code:"FLT006" ~subject:(bsub b)
                     ~data:[ ("factor", Diagnostic.Num factor) ]
                     "slowdown factor %gx is crash-like but invisible to \
                      crash handling (consider a crash/recover pair)"
                     factor)
          | Fault.Partition _ | Fault.ZoneOutage _ ->
              (* Removed by the expansion below; unreachable. *)
              ()
          | Fault.Workload_shift _ ->
              (* Drift targets no backend; nothing to track here. *)
              ())
        (Fault.sort (List.concat_map expand (Fault.sort schedule)));
      Array.iteri
        (fun b at ->
          if not (Float.is_nan at) then
            add
              (Diagnostic.warning ~code:"FLT002" ~subject:(bsub b)
                 ~data:[ ("crashed_at", Diagnostic.Num at) ]
                 "crash at %g is never recovered (permanent failure)" at))
        down_at;
      (match k with
      | Some k when !peak_down > k ->
          add
            (Diagnostic.warning ~code:"FLT004" ~subject:"schedule"
               ~data:
                 [
                   ("peak_down", Diagnostic.Int !peak_down);
                   ("k", Diagnostic.Int k);
                   ("at", Diagnostic.Num !peak_at);
                 ]
               "%d backends down simultaneously at %g exceeds the k=%d \
                availability guarantee"
               !peak_down !peak_at k)
      | _ -> ());
      Diagnostic.sort !diags

let check_params ?k (p : Chaos.params) =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let subject = "chaos" in
  let pos name v =
    if (not (Float.is_finite v)) || v <= 0. then
      add
        (Diagnostic.error ~code:"FLT008" ~subject
           ~data:[ (name, Diagnostic.Num v) ]
           "%s %g is not a positive duration" name v)
  in
  pos "mtbf" p.Chaos.mtbf;
  pos "mttr" p.Chaos.mttr;
  pos "horizon" p.Chaos.horizon;
  if
    (not (Float.is_finite p.Chaos.slowdown_prob))
    || p.Chaos.slowdown_prob < 0.
    || p.Chaos.slowdown_prob > 1.
  then
    add
      (Diagnostic.error ~code:"FLT008" ~subject
         ~data:[ ("slowdown_prob", Diagnostic.Num p.Chaos.slowdown_prob) ]
         "slowdown_prob %g outside [0, 1]" p.Chaos.slowdown_prob);
  if p.Chaos.slowdown_prob > 0. && p.Chaos.slowdown_factor < 1. then
    add
      (Diagnostic.error ~code:"FLT008" ~subject
         ~data:[ ("slowdown_factor", Diagnostic.Num p.Chaos.slowdown_factor) ]
         "slowdown_factor %g < 1 would speed backends up"
         p.Chaos.slowdown_factor);
  (match p.Chaos.max_concurrent_down with
  | Some c when c < 1 ->
      add
        (Diagnostic.error ~code:"FLT008" ~subject
           ~data:[ ("max_concurrent_down", Diagnostic.Int c) ]
           "max_concurrent_down %d < 1 suppresses every crash" c)
  | _ -> ());
  if
    Float.is_finite p.Chaos.mtbf
    && Float.is_finite p.Chaos.mttr
    && p.Chaos.mtbf > 0.
    && p.Chaos.mttr >= p.Chaos.mtbf
  then
    add
      (Diagnostic.warning ~code:"FLT003" ~subject
         ~data:
           [
             ("mtbf", Diagnostic.Num p.Chaos.mtbf);
             ("mttr", Diagnostic.Num p.Chaos.mttr);
           ]
         "MTTR %g s meets or exceeds MTBF %g s: backends spend more time \
          down than up"
         p.Chaos.mttr p.Chaos.mtbf);
  (match (k, p.Chaos.max_concurrent_down) with
  | Some k, Some c when c > k ->
      add
        (Diagnostic.warning ~code:"FLT004" ~subject
           ~data:
             [ ("max_concurrent_down", Diagnostic.Int c);
               ("k", Diagnostic.Int k) ]
           "concurrent-down cap %d exceeds the k=%d availability guarantee"
           c k)
  | Some k, None ->
      add
        (Diagnostic.warning ~code:"FLT004" ~subject
           ~data:[ ("k", Diagnostic.Int k) ]
           "no concurrent-down cap: chaos may exceed the k=%d availability \
            guarantee"
           k)
  | _ -> ());
  if
    Float.is_finite p.Chaos.mtbf
    && Float.is_finite p.Chaos.horizon
    && p.Chaos.horizon > 0.
    && p.Chaos.horizon < p.Chaos.mtbf
  then
    add
      (Diagnostic.info ~code:"FLT005" ~subject
         ~data:
           [
             ("horizon", Diagnostic.Num p.Chaos.horizon);
             ("mtbf", Diagnostic.Num p.Chaos.mtbf);
           ]
         "horizon %g s is shorter than the MTBF %g s: most runs will see \
          no fault at all"
         p.Chaos.horizon p.Chaos.mtbf);
  if
    (not (Float.is_finite p.Chaos.partition_prob))
    || p.Chaos.partition_prob < 0.
    || p.Chaos.partition_prob > 1.
  then
    add
      (Diagnostic.error ~code:"FLT008" ~subject
         ~data:[ ("partition_prob", Diagnostic.Num p.Chaos.partition_prob) ]
         "partition_prob %g outside [0, 1]" p.Chaos.partition_prob);
  if p.Chaos.zones < 1 then
    add
      (Diagnostic.error ~code:"FLT008" ~subject
         ~data:[ ("zones", Diagnostic.Int p.Chaos.zones) ]
         "zones %d < 1: at least one fault domain is required" p.Chaos.zones);
  (match p.Chaos.correlated_mtbf with
  | Some m ->
      pos "correlated_mtbf" m;
      if p.Chaos.zones = 1 then
        add
          (Diagnostic.warning ~code:"FLT009" ~subject
             ~data:[ ("zones", Diagnostic.Int p.Chaos.zones) ]
             "correlated failures with a single zone isolate the whole \
              cluster at once: no placement can survive them")
  | None -> ());
  Diagnostic.sort !diags
