open Cdbs_core
module D = Diagnostic

let backend_subject (alloc : Allocation.t) b =
  "backend " ^ (Allocation.backends alloc).(b).Backend.name

let class_subject (c : Query_class.t) = "class " ^ c.Query_class.id

let overlaps alloc b (c : Query_class.t) =
  not
    (Fragment.Set.is_empty
       (Fragment.Set.inter c.Query_class.fragments
          (Allocation.fragments_of alloc b)))

(* Eq. 8 plus sign sanity, per (backend, class). *)
let check_locality alloc =
  let n = Allocation.num_backends alloc in
  let out = ref [] in
  for b = 0 to n - 1 do
    Array.iter
      (fun c ->
        let w = Allocation.get_assign alloc b c in
        if w < -.Eps.assign then
          out :=
            D.error ~code:"ALC001" ~subject:(class_subject c)
              ~data:[ ("backend", D.Int b); ("assign", D.Num w) ]
              "negative assignment %g on %s" w
              (backend_subject alloc b)
            :: !out;
        if w > Eps.assign && not (Allocation.holds alloc b c) then
          out :=
            D.error ~code:"ALC002" ~subject:(class_subject c)
              ~data:[ ("backend", D.Int b); ("assign", D.Num w) ]
              "assigned %.4f on %s which lacks some of its fragments (Eq. 8)"
              w (backend_subject alloc b)
            :: !out)
      (Allocation.classes alloc)
  done;
  !out

(* Eq. 9: read classes fully distributed. *)
let check_read_conservation alloc =
  let workload = Allocation.workload alloc in
  let n = Allocation.num_backends alloc in
  List.filter_map
    (fun (c : Query_class.t) ->
      let total = ref 0. in
      for b = 0 to n - 1 do
        total := !total +. Allocation.get_assign alloc b c
      done;
      if abs_float (!total -. c.Query_class.weight) > Eps.weight then
        Some
          (D.error ~code:"ALC003" ~subject:(class_subject c)
             ~data:
               [
                 ("assigned", D.Num !total);
                 ("weight", D.Num c.Query_class.weight);
               ]
             "read class assigned %.6f of weight %.6f (Eq. 9)" !total
             c.Query_class.weight)
      else None)
    workload.Workload.reads

(* Eqs. 10-11: ROWA pinning and existence of update classes. *)
let check_updates alloc =
  let workload = Allocation.workload alloc in
  let n = Allocation.num_backends alloc in
  List.concat_map
    (fun (u : Query_class.t) ->
      let per_backend = ref [] in
      let somewhere = ref false in
      for b = 0 to n - 1 do
        let w = Allocation.get_assign alloc b u in
        if overlaps alloc b u then begin
          if abs_float (w -. u.Query_class.weight) > Eps.assign then
            per_backend :=
              D.error ~code:"ALC004" ~subject:(class_subject u)
                ~data:
                  [
                    ("backend", D.Int b); ("assign", D.Num w);
                    ("weight", D.Num u.Query_class.weight);
                  ]
                "update class carries %.6f instead of its full weight %.6f \
                 on %s whose data it overlaps (ROWA, Eq. 10)"
                w u.Query_class.weight
                (backend_subject alloc b)
              :: !per_backend;
          if w >= u.Query_class.weight -. Eps.assign then somewhere := true
        end
        else if w > Eps.assign then
          per_backend :=
            D.error ~code:"ALC005" ~subject:(class_subject u)
              ~data:[ ("backend", D.Int b); ("assign", D.Num w) ]
              "update class carries %.6f on %s which holds none of its data"
              w
              (backend_subject alloc b)
            :: !per_backend
      done;
      if u.Query_class.weight > 0. && not !somewhere then
        D.error ~code:"ALC006" ~subject:(class_subject u)
          ~data:[ ("weight", D.Num u.Query_class.weight) ]
          "update class allocated nowhere (Eq. 11)"
        :: !per_backend
      else !per_backend)
    workload.Workload.updates

let check_scale ?max_scale alloc =
  match max_scale with
  | None -> []
  | Some bound ->
      let s = Allocation.scale alloc in
      if s > bound +. Eps.weight then
        [
          D.error ~code:"ALC007" ~subject:"allocation"
            ~data:[ ("scale", D.Num s); ("max_scale", D.Num bound) ]
            "scale factor %.4f exceeds the bound %.4f (Eqs. 14-15)" s bound;
        ]
      else []

let check_storage ?storage_limit_mb alloc =
  match storage_limit_mb with
  | None -> []
  | Some limits ->
      let n = min (Array.length limits) (Allocation.num_backends alloc) in
      let out = ref [] in
      for b = 0 to n - 1 do
        let stored = Fragment.set_size (Allocation.fragments_of alloc b) in
        if stored > limits.(b) +. Eps.weight then
          out :=
            D.error ~code:"ALC008" ~subject:(backend_subject alloc b)
              ~data:[ ("stored_mb", D.Num stored); ("limit_mb", D.Num limits.(b)) ]
              "stores %.1f MB, over its %.1f MB limit" stored limits.(b)
            :: !out
      done;
      !out

let check_ksafety ~k alloc =
  if k <= 0 then []
  else begin
    let workload = Allocation.workload alloc in
    let n = Allocation.num_backends alloc in
    let class_diags =
      List.filter_map
        (fun (c : Query_class.t) ->
          let replicas = Ksafety.class_replica_count alloc c in
          if replicas < k + 1 then
            Some
              (D.error ~code:"ALC009" ~subject:(class_subject c)
                 ~data:[ ("replicas", D.Int replicas); ("k", D.Int k) ]
                 "served by %d backend%s, fewer than the k+1 = %d required"
                 replicas
                 (if replicas = 1 then "" else "s")
                 (k + 1))
          else None)
        (Workload.all_classes workload)
    in
    let fragment_diags =
      Fragment.Set.fold
        (fun f acc ->
          let copies = ref 0 in
          for b = 0 to n - 1 do
            if Fragment.Set.mem f (Allocation.fragments_of alloc b) then
              incr copies
          done;
          if !copies < k + 1 then
            D.warning ~code:"ALC010" ~subject:("fragment " ^ Fragment.name f)
              ~data:[ ("copies", D.Int !copies); ("k", D.Int k) ]
              "stored %d time%s, fewer than k+1 = %d (Eq. 46)" !copies
              (if !copies = 1 then "" else "s")
              (k + 1)
            :: acc
          else acc)
        (Workload.fragments workload) []
    in
    class_diags @ fragment_diags
  end

(* Domain spread: with a topology, k-safety must also hold against
   correlated failures — replicas of a class may not stack in fewer zones
   than min(k+1, zones). *)
let check_topology ?topology ~k alloc =
  match topology with
  | None -> []
  | Some t ->
      let n = Allocation.num_backends alloc in
      if Topology.num_backends t <> n then
        [
          D.error ~code:"ALC014" ~subject:"topology"
            ~data:
              [
                ("topology_backends", D.Int (Topology.num_backends t));
                ("backends", D.Int n);
              ]
            "covers %d backends but the allocation has %d"
            (Topology.num_backends t) n;
        ]
      else if k <= 0 then []
      else begin
        let required = min (k + 1) (Topology.zones t) in
        List.filter_map
          (fun (c : Query_class.t) ->
            let spread = Ksafety.class_zone_spread ~topology:t alloc c in
            if spread < required then
              Some
                (D.error ~code:"ALC013" ~subject:(class_subject c)
                   ~data:
                     [
                       ("zones_spanned", D.Int spread);
                       ("required", D.Int required);
                       ("replicas",
                        D.Int (Ksafety.class_replica_count alloc c));
                     ]
                   "replicas span %d fault domain%s, fewer than the \
                    min(k+1, zones) = %d required — a single zone outage \
                    takes out every copy"
                   spread
                   (if spread = 1 then "" else "s")
                   required)
            else None)
          (Workload.all_classes (Allocation.workload alloc))
      end

(* Lint: storage nothing assigned on the backend needs, and idle backends. *)
let check_lints ~k alloc =
  let workload = Allocation.workload alloc in
  let n = Allocation.num_backends alloc in
  let out = ref [] in
  for b = 0 to n - 1 do
    let frs = Allocation.fragments_of alloc b in
    let load = Allocation.assigned_load alloc b in
    if Fragment.Set.is_empty frs && load <= Eps.assign then
      out :=
        D.info ~code:"ALC012" ~subject:(backend_subject alloc b)
          "idle: stores nothing and serves no load"
        :: !out
    else if k = 0 then begin
      let needed =
        List.fold_left
          (fun acc (c : Query_class.t) ->
            if Allocation.get_assign alloc b c > Eps.assign then
              Fragment.Set.union acc c.Query_class.fragments
            else acc)
          Fragment.Set.empty
          (Workload.all_classes workload)
      in
      Fragment.Set.iter
        (fun f ->
          if not (Fragment.Set.mem f needed) then
            out :=
              D.warning ~code:"ALC011" ~subject:(backend_subject alloc b)
                ~data:
                  [
                    ("fragment", D.Str (Fragment.name f));
                    ("size_mb", D.Num f.Fragment.size);
                  ]
                "stores %s (%.1f MB) which no class assigned here references \
                 (prune would drop it)"
                (Fragment.name f) f.Fragment.size
            :: !out)
        (Fragment.Set.diff frs needed)
    end
  done;
  !out

(* ------------------------------------------------------------------ *)
(* Dense-path checks: the same Eq. 8-11 / 14-15 scans as above, ported  *)
(* to the flat representation so verifying a 10⁵+-fragment allocation   *)
(* is a few indexed passes, not the bottleneck.  Diagnostics are capped *)
(* per code — a systematically broken massive instance reports the      *)
(* first hits plus a count, not a million records.                      *)
(* ------------------------------------------------------------------ *)

let dense_cap = 100

module Capped = struct
  type t = {
    mutable diags : D.t list;
    counts : (string, int ref) Hashtbl.t;
  }

  let create () = { diags = []; counts = Hashtbl.create 8 }

  let add t (d : D.t) =
    let c =
      match Hashtbl.find_opt t.counts d.D.code with
      | Some r -> r
      | None ->
          let r = ref 0 in
          Hashtbl.replace t.counts d.D.code r;
          r
    in
    incr c;
    if !c <= dense_cap then t.diags <- d :: t.diags

  let result t =
    let overflow =
      Hashtbl.fold
        (fun code c acc ->
          if !c > dense_cap then
            D.warning ~code:"ALC015" ~subject:("code " ^ code)
              ~data:[ ("code", D.Str code); ("total", D.Int !c) ]
              "%d diagnostics of %s; showing the first %d" !c code dense_cap
            :: acc
          else acc)
        t.counts []
    in
    List.rev_append t.diags overflow
end

let check_dense ?(k = 0) ?max_scale ?topology (t : Cdbs_core.Dense.t) =
  let open Cdbs_core.Dense in
  let inst = t.inst in
  let out = Capped.create () in
  let add = Capped.add out in
  let n = num_backends t in
  let b_subject b = "backend " ^ inst.backends.(b).Backend.name in
  let c_subject c = "class " ^ inst.class_id.(c) in
  (* Eq. 8 plus sign sanity (ALC001/ALC002), Eq. 10 pinning (ALC004/005),
     in one pass over the assignment matrix. *)
  for b = 0 to n - 1 do
    if t.b_alive.(b) then begin
      let row = t.assign.(b) in
      for c = 0 to inst.n_classes - 1 do
        if t.c_alive.(c) then begin
          let w = row.(c) in
          if w < -.Eps.assign then
            add
              (D.error ~code:"ALC001" ~subject:(c_subject c)
                 ~data:[ ("backend", D.Int b); ("assign", D.Num w) ]
                 "negative assignment %g on %s" w (b_subject b));
          if w > Eps.assign && not (holds t b c) then
            add
              (D.error ~code:"ALC002" ~subject:(c_subject c)
                 ~data:[ ("backend", D.Int b); ("assign", D.Num w) ]
                 "assigned %.4f on %s which lacks some of its fragments (Eq. 8)"
                 w (b_subject b))
        end
      done
    end
  done;
  (* Eq. 9 (ALC003): read classes fully distributed. *)
  Array.iter
    (fun c ->
      if t.c_alive.(c) then begin
        let total = ref 0. in
        for b = 0 to n - 1 do
          if t.b_alive.(b) then total := !total +. t.assign.(b).(c)
        done;
        let w = inst.class_weight.(c) in
        if abs_float (!total -. w) > Eps.weight then
          add
            (D.error ~code:"ALC003" ~subject:(c_subject c)
               ~data:[ ("assigned", D.Num !total); ("weight", D.Num w) ]
               "read class assigned %.6f of weight %.6f (Eq. 9)" !total w)
      end)
    inst.read_idx;
  (* Eqs. 10-11 (ALC004/005/006): ROWA pinning and existence. *)
  Array.iter
    (fun u ->
      if t.c_alive.(u) then begin
        let w = inst.class_weight.(u) in
        let somewhere = ref false in
        for b = 0 to n - 1 do
          if t.b_alive.(b) then begin
            let a = t.assign.(b).(u) in
            if overlaps t b u then begin
              if abs_float (a -. w) > Eps.assign then
                add
                  (D.error ~code:"ALC004" ~subject:(c_subject u)
                     ~data:
                       [
                         ("backend", D.Int b);
                         ("assign", D.Num a);
                         ("weight", D.Num w);
                       ]
                     "update class carries %.6f instead of its full weight \
                      %.6f on %s whose data it overlaps (ROWA, Eq. 10)"
                     a w (b_subject b));
              if a >= w -. Eps.assign then somewhere := true
            end
            else if a > Eps.assign then
              add
                (D.error ~code:"ALC005" ~subject:(c_subject u)
                   ~data:[ ("backend", D.Int b); ("assign", D.Num a) ]
                   "update class carries %.6f on %s which holds none of its \
                    data"
                   a (b_subject b))
          end
        done;
        if w > 0. && not !somewhere then
          add
            (D.error ~code:"ALC006" ~subject:(c_subject u)
               ~data:[ ("weight", D.Num w) ]
               "update class allocated nowhere (Eq. 11)")
      end)
    inst.upd_idx;
  (* Eqs. 14-15 (ALC007). *)
  (match max_scale with
  | None -> ()
  | Some bound ->
      let s = scale t in
      if s > bound +. Eps.weight then
        add
          (D.error ~code:"ALC007" ~subject:"allocation"
             ~data:[ ("scale", D.Num s); ("max_scale", D.Num bound) ]
             "scale factor %.4f exceeds the bound %.4f (Eqs. 14-15)" s bound));
  (* k-safety (ALC009) and domain spread (ALC013) for alive classes. *)
  if k > 0 then begin
    let alive_backends = ref 0 in
    for b = 0 to n - 1 do
      if t.b_alive.(b) then incr alive_backends
    done;
    let want = min (k + 1) !alive_backends in
    let zones_alive, zone_of =
      match topology with
      | None -> (0, fun _ -> 0)
      | Some topo ->
          let seen = Array.make (Topology.zones topo) false in
          for b = 0 to n - 1 do
            if t.b_alive.(b) then seen.(Topology.zone_of topo b) <- true
          done;
          ( Array.fold_left (fun acc s -> if s then acc + 1 else acc) 0 seen,
            fun b -> Topology.zone_of topo b )
    in
    let zone_seen =
      match topology with
      | None -> [||]
      | Some topo -> Array.make (Topology.zones topo) false
    in
    for c = 0 to inst.n_classes - 1 do
      if t.c_alive.(c) then begin
        Array.fill zone_seen 0 (Array.length zone_seen) false;
        let replicas = ref 0 in
        for b = 0 to n - 1 do
          if t.b_alive.(b) && holds t b c then begin
            incr replicas;
            if topology <> None then zone_seen.(zone_of b) <- true
          end
        done;
        if !replicas < want then
          add
            (D.error ~code:"ALC009" ~subject:(c_subject c)
               ~data:[ ("replicas", D.Int !replicas); ("k", D.Int k) ]
               "served by %d backend%s, fewer than the k+1 = %d required"
               !replicas
               (if !replicas = 1 then "" else "s")
               (k + 1));
        if topology <> None then begin
          let spread =
            Array.fold_left
              (fun acc s -> if s then acc + 1 else acc)
              0 zone_seen
          in
          let required = min (k + 1) zones_alive in
          if spread < required then
            add
              (D.error ~code:"ALC013" ~subject:(c_subject c)
                 ~data:
                   [
                     ("zones_spanned", D.Int spread);
                     ("required", D.Int required);
                     ("replicas", D.Int !replicas);
                   ]
                 "replicas span %d fault domain%s, fewer than the min(k+1, \
                  zones) = %d required — a single zone outage takes out every \
                  copy"
                 spread
                 (if spread = 1 then "" else "s")
                 required)
        end
      end
    done
  end;
  (* Lints (ALC011/ALC012): dead storage and idle backends. *)
  let scratch = Bytes.make ((inst.n_frags + 7) / 8) '\000' in
  for b = 0 to n - 1 do
    if t.b_alive.(b) then begin
      if t.stored.(b) <= Eps.assign && t.load.(b) <= Eps.assign then
        add
          (D.info ~code:"ALC012" ~subject:(b_subject b)
             "idle: stores nothing and serves no load")
      else if k = 0 then begin
        Bytes.fill scratch 0 (Bytes.length scratch) '\000';
        for c = 0 to inst.n_classes - 1 do
          if t.c_alive.(c) && t.assign.(b).(c) > Eps.assign then
            iter_footprint inst c (fun f -> Bits.set scratch f)
        done;
        Bits.iter
          (fun f ->
            if not (Bits.get scratch f) then
              add
                (D.warning ~code:"ALC011" ~subject:(b_subject b)
                   ~data:
                     [
                       ("fragment", D.Int f);
                       ("size_mb", D.Num inst.frag_size.(f));
                     ]
                   "stores fragment #%d (%.1f MB) which no class assigned \
                    here references (prune would drop it)"
                   f
                   inst.frag_size.(f)))
          t.held.(b)
      end
    end
  done;
  Capped.result out

let check ?(k = 0) ?max_scale ?storage_limit_mb ?topology alloc =
  check_locality alloc
  @ check_read_conservation alloc
  @ check_updates alloc
  @ check_scale ?max_scale alloc
  @ check_storage ?storage_limit_mb alloc
  @ check_ksafety ~k alloc
  @ check_topology ?topology ~k alloc
  @ check_lints ~k alloc

let check_exn ?k ?topology ~context alloc =
  match Diagnostic.errors (check ?k ?topology alloc) with
  | [] -> ()
  | errs ->
      raise
        (Invariants.Violation
           (context ^ ": "
           ^ String.concat "; "
               (List.map (fun d -> Fmt.str "%a" Diagnostic.pp d) errs)))
