open Cdbs_core
module D = Diagnostic

let class_subject (c : Query_class.t) = "class " ^ c.Query_class.id

let check_ids classes =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun (c : Query_class.t) ->
      let id = c.Query_class.id in
      if Hashtbl.mem seen id then
        Some
          (D.error ~code:"WKL001" ~subject:(class_subject c)
             "duplicate query class id %s" id)
      else begin
        Hashtbl.replace seen id ();
        None
      end)
    classes

let check_weights (w : Workload.t) classes =
  let per_class =
    List.concat_map
      (fun (c : Query_class.t) ->
        if c.Query_class.weight < 0. then
          [
            D.error ~code:"WKL002" ~subject:(class_subject c)
              ~data:[ ("weight", D.Num c.Query_class.weight) ]
              "negative weight %g" c.Query_class.weight;
          ]
        else if c.Query_class.weight = 0. then
          [
            D.warning ~code:"WKL003" ~subject:(class_subject c)
              "zero-weight class never influences the allocation";
          ]
        else [])
      classes
  in
  let total = Workload.total_weight w in
  if abs_float (total -. 1.) > Eps.weight then
    D.error ~code:"WKL004" ~subject:"workload"
      ~data:[ ("total", D.Num total) ]
      "class weights sum to %.6f, expected 1 (run Workload.normalize?)" total
    :: per_class
  else per_class

let check_footprints classes =
  List.filter_map
    (fun (c : Query_class.t) ->
      if Fragment.Set.is_empty c.Query_class.fragments then
        Some
          (D.error ~code:"WKL005" ~subject:(class_subject c)
             "class references no fragments")
      else None)
    classes

let check_kinds (w : Workload.t) =
  List.filter_map
    (fun (c : Query_class.t) ->
      if Query_class.is_update c then
        Some
          (D.error ~code:"WKL006" ~subject:(class_subject c)
             "update class listed among reads")
      else None)
    w.Workload.reads
  @ List.filter_map
      (fun (c : Query_class.t) ->
        if not (Query_class.is_update c) then
          Some
            (D.error ~code:"WKL006" ~subject:(class_subject c)
               "read class listed among updates")
        else None)
      w.Workload.updates

let fragment_table (f : Fragment.t) =
  match f.Fragment.kind with
  | Fragment.Table t -> (t, None)
  | Fragment.Column { table; column } | Fragment.Range { table; column; _ } ->
      (table, Some column)

let check_schema schema (w : Workload.t) =
  Fragment.Set.fold
    (fun f acc ->
      let table, column = fragment_table f in
      let subject = "fragment " ^ Fragment.name f in
      match List.assoc_opt table schema with
      | None ->
          D.error ~code:"WKL007" ~subject
            ~data:[ ("table", D.Str table) ]
            "references undefined table %s" table
          :: acc
      | Some columns -> (
          match column with
          | Some col when not (List.mem col columns) ->
              D.error ~code:"WKL008" ~subject
                ~data:[ ("table", D.Str table); ("column", D.Str col) ]
                "references undefined column %s.%s" table col
              :: acc
          | _ -> acc))
    (Workload.fragments w) []

let check_duplicate_footprints classes =
  let rec go acc = function
    | [] -> List.rev acc
    | (c : Query_class.t) :: rest ->
        let dup =
          List.find_opt
            (fun (c' : Query_class.t) ->
              Query_class.is_update c = Query_class.is_update c'
              && Fragment.Set.equal c.Query_class.fragments
                   c'.Query_class.fragments)
            rest
        in
        let acc =
          match dup with
          | Some c' ->
              D.warning ~code:"WKL009" ~subject:(class_subject c)
                ~data:[ ("other", D.Str c'.Query_class.id) ]
                "same kind and fragment footprint as %s (classification \
                 should merge them)"
                c'.Query_class.id
              :: acc
          | None -> acc
        in
        go acc rest
  in
  go [] classes

(* Ranges over the same table.column, sorted by [lo]: report overlaps and
   interior gaps.  A gap before the first or after the last range is fine —
   the workload may simply not touch that part of the data. *)
let check_ranges (w : Workload.t) =
  let groups : (string * string, (float * float) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  Fragment.Set.iter
    (fun f ->
      match f.Fragment.kind with
      | Fragment.Range { table; column; lo; hi } ->
          let key = (table, column) in
          let cell =
            match Hashtbl.find_opt groups key with
            | Some c -> c
            | None ->
                let c = ref [] in
                Hashtbl.replace groups key c;
                c
          in
          cell := (lo, hi) :: !cell
      | _ -> ())
    (Workload.fragments w);
  Hashtbl.fold
    (fun (table, column) cell acc ->
      let subject = Printf.sprintf "fragmentation %s.%s" table column in
      let ranges =
        List.sort (fun (a, _) (b, _) -> Float.compare a b) !cell
      in
      let rec scan acc = function
        | (lo1, hi1) :: ((lo2, hi2) :: _ as rest) ->
            let acc =
              if lo2 < hi1 -. Eps.weight then
                D.warning ~code:"WKL010" ~subject
                  ~data:
                    [
                      ("lo1", D.Num lo1); ("hi1", D.Num hi1);
                      ("lo2", D.Num lo2); ("hi2", D.Num hi2);
                    ]
                  "ranges [%g,%g) and [%g,%g) overlap" lo1 hi1 lo2 hi2
                :: acc
              else if lo2 > hi1 +. Eps.weight then
                D.warning ~code:"WKL011" ~subject
                  ~data:[ ("gap_lo", D.Num hi1); ("gap_hi", D.Num lo2) ]
                  "gap [%g,%g) not covered by any fragment" hi1 lo2
                :: acc
              else acc
            in
            scan acc rest
        | _ -> acc
      in
      scan acc ranges)
    groups []

let check ?schema (w : Workload.t) =
  let classes = Workload.all_classes w in
  check_ids classes
  @ check_weights w classes
  @ check_footprints classes
  @ check_kinds w
  @ (match schema with Some s -> check_schema s w | None -> [])
  @ check_duplicate_footprints classes
  @ check_ranges w
