(** Workload lints — sanity of the classification before anything is
    allocated from it.

    Codes:
    - [WKL001] (error)   duplicate query-class id
    - [WKL002] (error)   negative class weight
    - [WKL003] (warning) zero-weight class (dead weight in the search space)
    - [WKL004] (error)   class weights do not sum to 1
    - [WKL005] (error)   class references no fragments
    - [WKL006] (error)   kind mismatch (update listed among reads or
                         vice versa)
    - [WKL007] (error)   fragment references a table the schema does not
                         define (only with [~schema])
    - [WKL008] (error)   fragment references a column the schema does not
                         define (only with [~schema])
    - [WKL009] (warning) two classes of the same kind share an identical
                         fragment footprint (the classification failed to
                         merge them)
    - [WKL010] (warning) horizontal fragmentation: two ranges over the same
                         [table.column] overlap (tuples double-counted)
    - [WKL011] (warning) horizontal fragmentation: gap between consecutive
                         ranges over the same [table.column] (tuples not
                         covered by any fragment) *)

open Cdbs_core

val check :
  ?schema:(string * string list) list ->
  Workload.t ->
  Diagnostic.t list
(** [schema] is the [(table, columns)] catalog to resolve fragment
    references against (as produced by [Cdbs_storage.Schema.to_assoc]);
    without it the undefined-table/column checks are skipped. *)
