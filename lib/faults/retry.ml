type policy = {
  max_retries : int;
  timeout : float;
  backoff_base : float;
  backoff_multiplier : float;
  jitter : float;
  max_backoff : float;
}

let default =
  {
    max_retries = 3;
    timeout = 30.;
    backoff_base = 0.05;
    backoff_multiplier = 2.;
    jitter = 0.2;
    max_backoff = infinity;
  }

let no_retry = { default with max_retries = 0 }

let make ?(max_retries = default.max_retries) ?(timeout = default.timeout)
    ?(backoff_base = default.backoff_base)
    ?(backoff_multiplier = default.backoff_multiplier)
    ?(jitter = default.jitter) ?(max_backoff = default.max_backoff) () =
  if max_retries < 0 then invalid_arg "Retry.make: negative max_retries";
  if timeout <= 0. then invalid_arg "Retry.make: timeout <= 0";
  if backoff_base <= 0. then invalid_arg "Retry.make: backoff_base <= 0";
  if backoff_multiplier < 1. then
    invalid_arg "Retry.make: backoff_multiplier < 1";
  if jitter < 0. || jitter >= 1. then
    invalid_arg "Retry.make: jitter must be in [0, 1)";
  if not (max_backoff > 0.) then invalid_arg "Retry.make: max_backoff <= 0";
  { max_retries; timeout; backoff_base; backoff_multiplier; jitter;
    max_backoff }

let backoff ?rng p ~attempt =
  if attempt < 1 then invalid_arg "Retry.backoff: attempt < 1";
  let d = p.backoff_base *. (p.backoff_multiplier ** float_of_int (attempt - 1)) in
  let d =
    match rng with
    | Some g when p.jitter > 0. ->
        (* Symmetric jitter in [1 - jitter, 1 + jitter) desynchronises the
           retry storm that follows a crash. *)
        d *. (1. -. p.jitter +. Cdbs_util.Rng.float g (2. *. p.jitter))
    | _ -> d
  in
  (* The cap is applied after jitter so it is hard: one late backoff step
     can never overshoot whatever deadline budget remains. *)
  Float.min d p.max_backoff

let gives_up p ~attempt = attempt > p.max_retries

let timed_out p ~arrival ~now = now -. arrival > p.timeout
