(** Retry policy for work lost to a backend crash.

    A read whose backend dies mid-service (or that cannot be routed at all
    because every replica is down) is retried on the surviving replicas:
    each attempt waits an exponentially growing backoff, the request is
    abandoned once it exhausts [max_retries] additional attempts or its
    total sojourn exceeds [timeout] seconds.  Updates are never retried —
    ROWA already applied them on every surviving replica, and the crashed
    replica's missed volume is recovered through the catch-up journal. *)

type policy = {
  max_retries : int;  (** additional attempts after the first (>= 0) *)
  timeout : float;
      (** per-request deadline in seconds measured from the original
          arrival; [infinity] disables it *)
  backoff_base : float;  (** delay before the first retry, seconds *)
  backoff_multiplier : float;  (** growth factor per further attempt *)
  jitter : float;
      (** relative jitter in [0, 1) applied when a seeded [Rng] is passed
          to {!backoff}: the delay is scaled by a uniform factor in
          [1 - jitter, 1 + jitter) so synchronized retries after a crash
          don't re-spike the survivor's queue *)
  max_backoff : float;
      (** hard cap on a single backoff delay, applied {e after} jitter;
          [infinity] (the default) disables it.  With end-to-end deadlines
          active, set this at or below the smallest budget you expect to
          retry under, so one late exponential step cannot overshoot the
          remaining budget and waste the request's final attempt. *)
}

val default : policy
(** 3 retries, 30 s timeout, 50 ms base backoff doubling per attempt,
    20 % jitter (effective only when an [Rng] is supplied), no backoff
    cap. *)

val no_retry : policy
(** Give up immediately: crash-orphaned work counts as an error. *)

val make :
  ?max_retries:int ->
  ?timeout:float ->
  ?backoff_base:float ->
  ?backoff_multiplier:float ->
  ?jitter:float ->
  ?max_backoff:float ->
  unit ->
  policy
(** {!default} with overrides.  @raise Invalid_argument on a negative
    retry count, non-positive timeout/base/max_backoff, multiplier < 1 or
    jitter outside [0, 1). *)

val backoff : ?rng:Cdbs_util.Rng.t -> policy -> attempt:int -> float
(** Delay inserted before retry [attempt] (1-based):
    [backoff_base *. backoff_multiplier ^ (attempt - 1)].  When [rng] is
    given and [jitter > 0], the delay is scaled by a deterministic uniform
    factor in [1 - jitter, 1 + jitter); without [rng] the delay is exact,
    preserving legacy behaviour.  The result never exceeds
    [max_backoff] — the cap clamps the jittered value. *)

val gives_up : policy -> attempt:int -> bool
(** Whether retry [attempt] exceeds the policy's budget. *)

val timed_out : policy -> arrival:float -> now:float -> bool
(** Whether a request that arrived at [arrival] has exceeded its deadline
    at [now]. *)
