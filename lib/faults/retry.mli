(** Retry policy for work lost to a backend crash.

    A read whose backend dies mid-service (or that cannot be routed at all
    because every replica is down) is retried on the surviving replicas:
    each attempt waits an exponentially growing backoff, the request is
    abandoned once it exhausts [max_retries] additional attempts or its
    total sojourn exceeds [timeout] seconds.  Updates are never retried —
    ROWA already applied them on every surviving replica, and the crashed
    replica's missed volume is recovered through the catch-up journal. *)

type policy = {
  max_retries : int;  (** additional attempts after the first (>= 0) *)
  timeout : float;
      (** per-request deadline in seconds measured from the original
          arrival; [infinity] disables it *)
  backoff_base : float;  (** delay before the first retry, seconds *)
  backoff_multiplier : float;  (** growth factor per further attempt *)
}

val default : policy
(** 3 retries, 30 s timeout, 50 ms base backoff doubling per attempt. *)

val no_retry : policy
(** Give up immediately: crash-orphaned work counts as an error. *)

val make :
  ?max_retries:int ->
  ?timeout:float ->
  ?backoff_base:float ->
  ?backoff_multiplier:float ->
  unit ->
  policy
(** {!default} with overrides.  @raise Invalid_argument on a negative
    retry count, non-positive timeout/base or multiplier < 1. *)

val backoff : policy -> attempt:int -> float
(** Delay inserted before retry [attempt] (1-based):
    [backoff_base *. backoff_multiplier ^ (attempt - 1)]. *)

val gives_up : policy -> attempt:int -> bool
(** Whether retry [attempt] exceeds the policy's budget. *)

val timed_out : policy -> arrival:float -> now:float -> bool
(** Whether a request that arrived at [arrival] has exceeded its deadline
    at [now]. *)
