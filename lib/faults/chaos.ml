module Rng = Cdbs_util.Rng

type params = {
  mtbf : float;
  mttr : float;
  horizon : float;
  slowdown_prob : float;
  slowdown_factor : float;
  max_concurrent_down : int option;
  correlated_mtbf : float option;
  partition_prob : float;
  zones : int;
  shift_mtbf : float option;
  shift_mixes : (string * float) list list;
}

let default =
  {
    mtbf = 120.;
    mttr = 25.;
    horizon = 600.;
    slowdown_prob = 0.25;
    slowdown_factor = 3.;
    max_concurrent_down = None;
    correlated_mtbf = None;
    partition_prob = 0.5;
    zones = 1;
    shift_mtbf = None;
    shift_mixes = [];
  }

(* One fault incident of a backend's renewal process. *)
type incident = { b : int; start : float; stop : float; slow : bool }

(* One correlated incident: a whole zone partitioned or crashed at once. *)
type correlated = {
  c_start : float;
  c_stop : float;
  zone : int;
  members : int list;
  is_partition : bool;
}

let generate ~rng ~num_backends p =
  if num_backends <= 0 then invalid_arg "Chaos.generate: num_backends <= 0";
  if p.mtbf <= 0. || p.mttr <= 0. || p.horizon <= 0. then
    invalid_arg "Chaos.generate: mtbf, mttr and horizon must be positive";
  if p.slowdown_prob < 0. || p.slowdown_prob > 1. then
    invalid_arg "Chaos.generate: slowdown_prob outside [0,1]";
  if p.slowdown_factor < 1. then
    invalid_arg "Chaos.generate: slowdown_factor < 1";
  if p.partition_prob < 0. || p.partition_prob > 1. then
    invalid_arg "Chaos.generate: partition_prob outside [0,1]";
  if p.zones < 1 || p.zones > num_backends then
    invalid_arg "Chaos.generate: zones outside [1, num_backends]";
  (match p.correlated_mtbf with
  | Some m when m <= 0. -> invalid_arg "Chaos.generate: correlated_mtbf <= 0"
  | _ -> ());
  (match p.shift_mtbf with
  | Some m when m <= 0. -> invalid_arg "Chaos.generate: shift_mtbf <= 0"
  | Some _ when p.shift_mixes = [] ->
      invalid_arg "Chaos.generate: shift_mtbf set but shift_mixes is empty"
  | _ -> ());
  let incidents = ref [] in
  for b = 0 to num_backends - 1 do
    (* Per-backend generator split off the seed stream: adding a backend
       does not perturb the others' timelines. *)
    let g = Rng.split rng in
    let t = ref (Rng.exponential g p.mtbf) in
    while !t < p.horizon do
      let duration = max 1e-3 (Rng.exponential g p.mttr) in
      let slow = Rng.float g 1. < p.slowdown_prob in
      incidents := { b; start = !t; stop = !t +. duration; slow } :: !incidents;
      t := !t +. duration +. Rng.exponential g p.mtbf
    done
  done;
  (* The correlated stream is split off AFTER the per-backend loop so
     turning it on (or off) never perturbs the independent incidents:
     [correlated_mtbf = None] reproduces legacy schedules byte for byte.
     One global renewal process — correlated windows never overlap each
     other; each one hits a whole zone (round-robin membership [b mod
     zones], matching {!Cdbs_core.Topology.uniform}). *)
  let correlated =
    match p.correlated_mtbf with
    | None -> []
    | Some mtbf_c ->
        let g = Rng.split rng in
        let acc = ref [] in
        let t = ref (Rng.exponential g mtbf_c) in
        while !t < p.horizon do
          let duration = max 1e-3 (Rng.exponential g p.mttr) in
          let zone = Rng.int g p.zones in
          let members =
            List.filter
              (fun b -> b mod p.zones = zone)
              (List.init num_backends (fun b -> b))
          in
          let is_partition = Rng.float g 1. < p.partition_prob in
          acc :=
            { c_start = !t; c_stop = !t +. duration; zone; members;
              is_partition }
            :: !acc;
          t := !t +. duration +. Rng.exponential g mtbf_c
        done;
        List.rev !acc
  in
  (* Independent incidents that intersect a correlated window on one of its
     member backends are dropped: a crash inside a partition (or a recover
     inside a zone outage) is unrepresentable — the simulator keeps one
     partition-state per backend and {!Fault.validate} rejects the
     overlap. *)
  let conflicts i =
    List.exists
      (fun c ->
        List.mem i.b c.members && i.start < c.c_stop && c.c_start < i.stop)
      correlated
  in
  let incidents =
    List.stable_sort
      (fun a b -> Float.compare a.start b.start)
      (List.filter (fun i -> not (conflicts i)) !incidents)
  in
  (* Enforce the concurrency cap in start order: an incident that would
     push the number of simultaneously crashed backends past the cap is
     dropped together with its recover.  Correlated incidents bypass the
     cap on purpose — probing beyond-k correlated loss is their job. *)
  let cap = match p.max_concurrent_down with Some c -> c | None -> max_int in
  let down = ref [] (* (backend, stop) of admitted crashes *) in
  let events =
    List.concat_map
      (fun i ->
        down := List.filter (fun (_, stop) -> stop > i.start) !down;
        if i.slow then
          [
            Fault.slowdown ~at:i.start ~backend:i.b ~factor:p.slowdown_factor
              ~duration:(i.stop -. i.start);
          ]
        else if List.length !down >= cap then []
        else begin
          down := (i.b, i.stop) :: !down;
          [ Fault.crash ~at:i.start i.b; Fault.recover ~at:i.stop i.b ]
        end)
      incidents
  in
  let correlated_events =
    List.map
      (fun c ->
        if c.is_partition then
          Fault.partition ~at:c.c_start ~backends:c.members
            ~duration:(c.c_stop -. c.c_start)
        else
          Fault.zone_outage ~at:c.c_start ~zone:c.zone
            ~duration:(c.c_stop -. c.c_start))
      correlated
  in
  (* The drift stream is split off last, so enabling it never perturbs the
     crash/slowdown/correlated timelines: [shift_mtbf = None] (the
     default) reproduces legacy schedules byte for byte.  A global renewal
     process emits instantaneous [Workload_shift] events, each picking one
     of the candidate mixes uniformly — drift and crashes land in the same
     schedule, so chaos runs exercise both together. *)
  let shift_events =
    match p.shift_mtbf with
    | None -> []
    | Some mtbf_s ->
        let mixes = Array.of_list p.shift_mixes in
        let g = Rng.split rng in
        let acc = ref [] in
        let t = ref (Rng.exponential g mtbf_s) in
        while !t < p.horizon do
          let mix = mixes.(Rng.int g (Array.length mixes)) in
          acc := Fault.workload_shift ~at:!t ~mix :: !acc;
          t := !t +. Rng.exponential g mtbf_s
        done;
        List.rev !acc
  in
  Fault.sort (events @ correlated_events @ shift_events)
