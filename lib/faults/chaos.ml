module Rng = Cdbs_util.Rng

type params = {
  mtbf : float;
  mttr : float;
  horizon : float;
  slowdown_prob : float;
  slowdown_factor : float;
  max_concurrent_down : int option;
}

let default =
  {
    mtbf = 120.;
    mttr = 25.;
    horizon = 600.;
    slowdown_prob = 0.25;
    slowdown_factor = 3.;
    max_concurrent_down = None;
  }

(* One fault incident of a backend's renewal process. *)
type incident = { b : int; start : float; stop : float; slow : bool }

let generate ~rng ~num_backends p =
  if num_backends <= 0 then invalid_arg "Chaos.generate: num_backends <= 0";
  if p.mtbf <= 0. || p.mttr <= 0. || p.horizon <= 0. then
    invalid_arg "Chaos.generate: mtbf, mttr and horizon must be positive";
  if p.slowdown_prob < 0. || p.slowdown_prob > 1. then
    invalid_arg "Chaos.generate: slowdown_prob outside [0,1]";
  if p.slowdown_factor < 1. then
    invalid_arg "Chaos.generate: slowdown_factor < 1";
  let incidents = ref [] in
  for b = 0 to num_backends - 1 do
    (* Per-backend generator split off the seed stream: adding a backend
       does not perturb the others' timelines. *)
    let g = Rng.split rng in
    let t = ref (Rng.exponential g p.mtbf) in
    while !t < p.horizon do
      let duration = max 1e-3 (Rng.exponential g p.mttr) in
      let slow = Rng.float g 1. < p.slowdown_prob in
      incidents := { b; start = !t; stop = !t +. duration; slow } :: !incidents;
      t := !t +. duration +. Rng.exponential g p.mtbf
    done
  done;
  let incidents =
    List.stable_sort (fun a b -> Float.compare a.start b.start) !incidents
  in
  (* Enforce the concurrency cap in start order: an incident that would
     push the number of simultaneously crashed backends past the cap is
     dropped together with its recover. *)
  let cap = match p.max_concurrent_down with Some c -> c | None -> max_int in
  let down = ref [] (* (backend, stop) of admitted crashes *) in
  let events =
    List.concat_map
      (fun i ->
        down := List.filter (fun (_, stop) -> stop > i.start) !down;
        if i.slow then
          [
            Fault.slowdown ~at:i.start ~backend:i.b ~factor:p.slowdown_factor
              ~duration:(i.stop -. i.start);
          ]
        else if List.length !down >= cap then []
        else begin
          down := (i.b, i.stop) :: !down;
          [ Fault.crash ~at:i.start i.b; Fault.recover ~at:i.stop i.b ]
        end)
      incidents
  in
  Fault.sort events
