(** Seeded chaos-schedule generator.

    Each backend runs an independent alternating renewal process: up for an
    exponentially distributed time with mean [mtbf], then faulted for an
    exponentially distributed time with mean [mttr] (a crash followed by a
    recover, or — with probability [slowdown_prob] — a slowdown of the same
    duration), and so on until [horizon].  Equal seeds yield equal
    schedules, so every chaos run is reproducible.

    [max_concurrent_down] caps how many backends may be crashed at once:
    incidents that would exceed the cap are skipped (slowdowns are not
    counted — a slow backend still serves).  Setting it to the allocation's
    k-safety degree keeps every run within the paper's availability
    guarantee (Appendix C); leaving it unbounded probes behaviour beyond
    the guarantee.

    {b Correlated failures.}  When [correlated_mtbf] is [Some m] a second,
    global renewal process (mean up-time [m], duration mean [mttr]) injects
    whole-zone incidents: each one picks a zone uniformly out of [zones]
    (round-robin membership [b mod zones], matching
    {!Cdbs_core.Topology.uniform}) and is a network [Partition] of that
    zone's backends with probability [partition_prob], a [ZoneOutage]
    otherwise.  Independent incidents that intersect a correlated window on
    an affected backend are dropped (the overlap is unrepresentable), and
    correlated incidents bypass [max_concurrent_down] — probing beyond-k
    correlated loss is their purpose.  The correlated stream draws from its
    own split of the seed, so [correlated_mtbf = None] (the default)
    reproduces legacy schedules byte for byte.

    {b Workload drift.}  When [shift_mtbf] is [Some m] a third renewal
    process (split off after the correlated stream, so enabling it never
    perturbs the other timelines) injects instantaneous
    [Workload_shift] events, each picking one of [shift_mixes]
    uniformly.  Drift is thereby scheduled like any other fault, so
    chaos runs exercise workload shifts and crashes together. *)

type params = {
  mtbf : float;  (** mean up-time between faults per backend, seconds *)
  mttr : float;  (** mean fault duration, seconds *)
  horizon : float;  (** no fault starts after this time *)
  slowdown_prob : float;  (** chance a fault is a slowdown, not a crash *)
  slowdown_factor : float;  (** service-time inflation of slowdowns *)
  max_concurrent_down : int option;
  correlated_mtbf : float option;
      (** mean time between whole-zone incidents; [None] disables them *)
  partition_prob : float;
      (** chance a correlated incident is a partition, not a zone outage *)
  zones : int;  (** fault domains, round-robin membership [b mod zones] *)
  shift_mtbf : float option;
      (** mean time between {!Fault.event.Workload_shift} events; [None]
          disables the drift stream *)
  shift_mixes : (string * float) list list;
      (** candidate class mixes a shift picks from, uniformly; must be
          non-empty when [shift_mtbf] is set *)
}

val default : params
(** MTBF 120 s, MTTR 25 s, horizon 600 s, 25 % slowdowns at 3x, no
    concurrency cap, no correlated failures (1 zone, 50 % partitions when
    enabled), no workload-shift stream. *)

val generate :
  rng:Cdbs_util.Rng.t -> num_backends:int -> params -> Fault.schedule
(** A validated, time-ordered schedule.  @raise Invalid_argument on
    non-positive [mtbf]/[mttr]/[horizon] or [num_backends <= 0]. *)
