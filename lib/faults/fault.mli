(** Typed fault timelines for the cluster simulator.

    A fault schedule is a time-ordered list of events injected into an
    open-mode run.  Event semantics:

    - [Crash b]: backend [b] leaves the cluster.  Work in flight or queued
      on it is cancelled; reads are retried on surviving replicas under the
      run's {!Retry.policy}; updates keep flowing ROWA to the survivors
      while the crashed backend's replicas go stale (their missed update
      volume accumulates in a delta journal).
    - [Recover b]: backend [b] rejoins.  It first catches up — replaying
      the update volume it missed while down — during which it accepts
      updates but serves no reads; once caught up it is re-admitted fully.
    - [Slowdown]: backend [b] serves at [factor] times its normal service
      time for [duration] seconds (a degraded-but-alive node: overloaded
      disk, failing NIC, noisy neighbour).

    Schedules are plain data so they can be generated ({!Chaos}), stored,
    printed and validated independently of the simulator executing them. *)

type event =
  | Crash of int  (** backend index *)
  | Recover of int
  | Slowdown of { backend : int; factor : float; duration : float }

type timed = { at : float; event : event }

type schedule = timed list
(** Time-ordered ({!sort} enforces it; the simulator re-sorts anyway). *)

val crash : at:float -> int -> timed
val recover : at:float -> int -> timed

val slowdown :
  at:float -> backend:int -> factor:float -> duration:float -> timed
(** @raise Invalid_argument when [factor < 1.] or [duration <= 0.]. *)

val backend : event -> int
(** The backend an event acts on. *)

val sort : schedule -> schedule
(** Stable sort by timestamp ([Float.compare], not polymorphic compare). *)

val of_failures : (float * int) list -> schedule
(** Lift the legacy [(time, backend)] permanent-failure list into a
    crash-only schedule (the {!Simulator.run_open_with_failures}
    compatibility shape). *)

val validate : num_backends:int -> schedule -> (unit, string) result
(** Structural checks: event times non-negative (and not NaN), backend
    indices in range, slowdown parameters sane,
    per-backend crash/recover alternation (no crash of a crashed backend,
    no recover of a running one), and no overlapping [Slowdown] windows on
    the same backend (the simulator's slow-state is a single
    factor/until pair per backend, so a second window starting inside an
    active one would silently overwrite it; a window may start exactly
    when the previous one ends). *)

val pp_event : event Fmt.t
val pp_timed : timed Fmt.t
val pp : schedule Fmt.t
