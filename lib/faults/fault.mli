(** Typed fault timelines for the cluster simulator.

    A fault schedule is a time-ordered list of events injected into an
    open-mode run.  Event semantics:

    - [Crash b]: backend [b] leaves the cluster.  Work in flight or queued
      on it is cancelled; reads are retried on surviving replicas under the
      run's {!Retry.policy}; updates keep flowing ROWA to the survivors
      while the crashed backend's replicas go stale (their missed update
      volume accumulates in a delta journal).
    - [Recover b]: backend [b] rejoins.  It first catches up — replaying
      the update volume it missed while down — during which it accepts
      updates but serves no reads; once caught up it is re-admitted fully.
    - [Slowdown]: backend [b] serves at [factor] times its normal service
      time for [duration] seconds (a degraded-but-alive node: overloaded
      disk, failing NIC, noisy neighbour).
    - [Partition]: the listed backends are cut off the network for
      [duration] seconds while their processes keep running.  Unlike a
      crash, in-flight reads on them {e time out} before failing over
      (slow-failure, not fast-failure), and on heal each backend is fenced
      behind a fresh monotonic epoch: it replays missed deltas before it
      may serve reads again, so a stale minority can never answer after
      the majority moved on (split-brain prevention).
    - [ZoneOutage]: every backend of a fault domain crashes at once and
      recovers together [duration] seconds later — the correlated-failure
      mode a {!Cdbs_core.Topology}-aware allocation is built to survive.
      Requires a topology ([validate ~zone_of], and the simulator's
      [?topology]) to resolve the zone to its member backends.
    - [Workload_shift]: from this instant the offered workload follows a
      new class mix — drift treated as a fault class.  The simulator
      replays a pre-generated request stream, so the engine only
      announces the shift (a ["workload.shift"] trace event for monitors
      and online estimators); the {e driver} that generates arrivals
      window by window (the drift experiment, [cdbs_cli autotune])
      interprets the new mix when it draws the following windows'
      requests.  Targets no backend.

    Schedules are plain data so they can be generated ({!Chaos}), stored,
    printed and validated independently of the simulator executing them. *)

type event =
  | Crash of int  (** backend index *)
  | Recover of int
  | Slowdown of { backend : int; factor : float; duration : float }
  | Partition of { backends : int list; duration : float }
      (** sorted, de-duplicated backend indices *)
  | ZoneOutage of { zone : int; duration : float }
  | Workload_shift of { mix : (string * float) list }
      (** the class mix in force from this instant on *)

type timed = { at : float; event : event }

type schedule = timed list
(** Time-ordered ({!sort} enforces it; the simulator re-sorts anyway). *)

val crash : at:float -> int -> timed
val recover : at:float -> int -> timed

val slowdown :
  at:float -> backend:int -> factor:float -> duration:float -> timed
(** @raise Invalid_argument when [factor < 1.] or [duration <= 0.]. *)

val partition : at:float -> backends:int list -> duration:float -> timed
(** Backends are sorted and de-duplicated.
    @raise Invalid_argument on an empty list or [duration <= 0.]. *)

val zone_outage : at:float -> zone:int -> duration:float -> timed
(** @raise Invalid_argument when [zone < 0] or [duration <= 0.]. *)

val workload_shift : at:float -> mix:(string * float) list -> timed
(** @raise Invalid_argument on an empty mix, a non-finite or negative
    weight, or weights summing to zero. *)

val backends : event -> int list
(** The backends an event acts on directly.  [ZoneOutage] returns [[]]:
    its membership depends on the topology, which the event does not
    carry (resolve via {!Cdbs_core.Topology.backends_in}).
    [Workload_shift] targets no backend. *)

val sort : schedule -> schedule
(** Stable sort by timestamp ([Float.compare], not polymorphic compare). *)

val of_failures : (float * int) list -> schedule
(** Lift the legacy [(time, backend)] permanent-failure list into a
    crash-only schedule (the {!Simulator.run_open_with_failures}
    compatibility shape). *)

val validate :
  ?zone_of:int array -> num_backends:int -> schedule -> (unit, string) result
(** Structural checks: event times non-negative (and not NaN), backend
    indices in range, slowdown parameters sane,
    per-backend crash/recover alternation (no crash of a crashed backend,
    no recover of a running one), no overlapping [Slowdown] windows on
    the same backend, and — for the correlated kinds — no event targeting
    a backend inside an active [Partition]/[ZoneOutage] window (the
    simulator keeps a single partition-state per backend, so overlapping
    cuts would silently merge; a window may start exactly when the
    previous one ends), no partitioning of an already-down backend, and
    no [ZoneOutage] without [?zone_of] (the zone-to-backend map, e.g.
    a copy of [Topology]'s assignment; zone outages cannot be resolved —
    or simulated — without one).  [Workload_shift] mixes must be
    non-empty with finite, non-negative weights summing above zero. *)

val pp_event : event Fmt.t
val pp_timed : timed Fmt.t
val pp : schedule Fmt.t
