type event =
  | Crash of int
  | Recover of int
  | Slowdown of { backend : int; factor : float; duration : float }

type timed = { at : float; event : event }
type schedule = timed list

let crash ~at b = { at; event = Crash b }
let recover ~at b = { at; event = Recover b }

let slowdown ~at ~backend ~factor ~duration =
  if factor < 1. then invalid_arg "Fault.slowdown: factor < 1";
  if duration <= 0. then invalid_arg "Fault.slowdown: duration <= 0";
  { at; event = Slowdown { backend; factor; duration } }

let backend = function
  | Crash b | Recover b | Slowdown { backend = b; _ } -> b

let sort schedule =
  List.stable_sort (fun a b -> Float.compare a.at b.at) schedule

let of_failures failures =
  sort (List.map (fun (at, b) -> crash ~at b) failures)

let validate ~num_backends schedule =
  let up = Array.make (max 1 num_backends) true in
  let slow_until = Array.make (max 1 num_backends) neg_infinity in
  let rec go = function
    | [] -> Ok ()
    | { at; event } :: rest -> (
        let b = backend event in
        if not (at >= 0.) then
          Error
            (Printf.sprintf
               "event on backend %d at %g: times must be non-negative" b at)
        else if b < 0 || b >= num_backends then
          Error (Printf.sprintf "event at %g targets backend %d of %d" at b
                   num_backends)
        else
          match event with
          | Crash _ ->
              if not up.(b) then
                Error (Printf.sprintf "crash at %g: backend %d already down"
                         at b)
              else begin up.(b) <- false; go rest end
          | Recover _ ->
              if up.(b) then
                Error (Printf.sprintf "recover at %g: backend %d is not down"
                         at b)
              else begin up.(b) <- true; go rest end
          | Slowdown { factor; duration; _ } ->
              if factor < 1. then
                Error (Printf.sprintf "slowdown at %g: factor %g < 1" at factor)
              else if duration <= 0. then
                Error (Printf.sprintf "slowdown at %g: duration %g <= 0" at
                         duration)
              else if at < slow_until.(b) then
                Error
                  (Printf.sprintf
                     "slowdown at %g: backend %d already slowed until %g \
                      (overlapping windows)"
                     at b slow_until.(b))
              else begin slow_until.(b) <- at +. duration; go rest end)
  in
  go (sort schedule)

let pp_event ppf = function
  | Crash b -> Fmt.pf ppf "crash B%d" (b + 1)
  | Recover b -> Fmt.pf ppf "recover B%d" (b + 1)
  | Slowdown { backend; factor; duration } ->
      Fmt.pf ppf "slowdown B%d x%.2f for %.1fs" (backend + 1) factor duration

let pp_timed ppf { at; event } = Fmt.pf ppf "%8.2fs %a" at pp_event event

let pp ppf schedule =
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut pp_timed) schedule
