type event =
  | Crash of int
  | Recover of int
  | Slowdown of { backend : int; factor : float; duration : float }
  | Partition of { backends : int list; duration : float }
  | ZoneOutage of { zone : int; duration : float }
  | Workload_shift of { mix : (string * float) list }

type timed = { at : float; event : event }
type schedule = timed list

let crash ~at b = { at; event = Crash b }
let recover ~at b = { at; event = Recover b }

let slowdown ~at ~backend ~factor ~duration =
  if factor < 1. then invalid_arg "Fault.slowdown: factor < 1";
  if duration <= 0. then invalid_arg "Fault.slowdown: duration <= 0";
  { at; event = Slowdown { backend; factor; duration } }

let partition ~at ~backends ~duration =
  if backends = [] then invalid_arg "Fault.partition: no backends";
  if duration <= 0. then invalid_arg "Fault.partition: duration <= 0";
  { at; event = Partition { backends = List.sort_uniq compare backends; duration } }

let zone_outage ~at ~zone ~duration =
  if zone < 0 then invalid_arg "Fault.zone_outage: zone < 0";
  if duration <= 0. then invalid_arg "Fault.zone_outage: duration <= 0";
  { at; event = ZoneOutage { zone; duration } }

let check_mix ~what mix =
  if mix = [] then invalid_arg (what ^ ": empty mix");
  List.iter
    (fun (id, w) ->
      if not (Float.is_finite w) || w < 0. then
        invalid_arg
          (Printf.sprintf "%s: weight of %S must be finite and >= 0" what id))
    mix;
  if List.fold_left (fun acc (_, w) -> acc +. w) 0. mix <= 0. then
    invalid_arg (what ^ ": mix weights sum to zero")

let workload_shift ~at ~mix =
  check_mix ~what:"Fault.workload_shift" mix;
  { at; event = Workload_shift { mix } }

let backends = function
  | Crash b | Recover b | Slowdown { backend = b; _ } -> [ b ]
  | Partition { backends = bs; _ } -> bs
  | ZoneOutage _ | Workload_shift _ -> []

let sort schedule =
  List.stable_sort (fun a b -> Float.compare a.at b.at) schedule

let of_failures failures =
  sort (List.map (fun (at, b) -> crash ~at b) failures)

let validate ?zone_of ~num_backends schedule =
  let n = max 1 num_backends in
  let up = Array.make n true in
  let slow_until = Array.make n neg_infinity in
  (* A backend inside an active partition (or zone-outage) window is
     unreachable: further events targeting it during the window would race
     the heal in ways the simulator's single partition-state per backend
     cannot represent, so they are rejected outright. *)
  let cut_until = Array.make n neg_infinity in
  let members_of_zone z =
    match zone_of with
    | None -> None
    | Some zs ->
        let acc = ref [] in
        Array.iteri (fun b z' -> if z' = z then acc := b :: !acc) zs;
        Some (List.rev !acc)
  in
  let check_backend at b =
    if b < 0 || b >= num_backends then
      Error
        (Printf.sprintf "event at %g targets backend %d of %d" at b
           num_backends)
    else Ok ()
  in
  let check_reachable what at b =
    if at < cut_until.(b) then
      Error
        (Printf.sprintf
           "%s at %g: backend %d is partitioned until %g (overlapping \
            windows)"
           what at b cut_until.(b))
    else Ok ()
  in
  let ( let* ) = Result.bind in
  let rec each f = function
    | [] -> Ok ()
    | x :: rest ->
        let* () = f x in
        each f rest
  in
  let cut what at ~duration bs =
    let* () =
      if duration <= 0. then
        Error (Printf.sprintf "%s at %g: duration %g <= 0" what at duration)
      else Ok ()
    in
    let* () =
      each
        (fun b ->
          let* () = check_backend at b in
          let* () = check_reachable what at b in
          if not up.(b) then
            Error
              (Printf.sprintf "%s at %g: backend %d is already down" what at b)
          else Ok ())
        bs
    in
    List.iter (fun b -> cut_until.(b) <- at +. duration) bs;
    Ok ()
  in
  let rec go = function
    | [] -> Ok ()
    | { at; event } :: rest -> (
        if not (at >= 0.) then
          Error
            (Printf.sprintf "event at %g: times must be non-negative" at)
        else
          match event with
          | Crash b ->
              let* () = check_backend at b in
              let* () = check_reachable "crash" at b in
              if not up.(b) then
                Error (Printf.sprintf "crash at %g: backend %d already down"
                         at b)
              else begin up.(b) <- false; go rest end
          | Recover b ->
              let* () = check_backend at b in
              let* () = check_reachable "recover" at b in
              if up.(b) then
                Error (Printf.sprintf "recover at %g: backend %d is not down"
                         at b)
              else begin up.(b) <- true; go rest end
          | Slowdown { backend = b; factor; duration } ->
              let* () = check_backend at b in
              let* () = check_reachable "slowdown" at b in
              if factor < 1. then
                Error (Printf.sprintf "slowdown at %g: factor %g < 1" at factor)
              else if duration <= 0. then
                Error (Printf.sprintf "slowdown at %g: duration %g <= 0" at
                         duration)
              else if at < slow_until.(b) then
                Error
                  (Printf.sprintf
                     "slowdown at %g: backend %d already slowed until %g \
                      (overlapping windows)"
                     at b slow_until.(b))
              else begin slow_until.(b) <- at +. duration; go rest end
          | Partition { backends = bs; duration } ->
              let* () =
                if bs = [] then
                  Error (Printf.sprintf "partition at %g: no backends" at)
                else Ok ()
              in
              let* () = cut "partition" at ~duration bs in
              go rest
          | ZoneOutage { zone; duration } -> (
              if zone < 0 then
                Error (Printf.sprintf "zone outage at %g: zone %d < 0" at zone)
              else
                match members_of_zone zone with
                | None ->
                    Error
                      (Printf.sprintf
                         "zone outage at %g: schedule has zone faults but no \
                          topology was supplied (pass ~zone_of)"
                         at)
                | Some [] ->
                    Error
                      (Printf.sprintf "zone outage at %g: zone %d is empty" at
                         zone)
                | Some bs ->
                    let* () = cut "zone outage" at ~duration bs in
                    go rest)
          | Workload_shift { mix } ->
              if mix = [] then
                Error (Printf.sprintf "workload shift at %g: empty mix" at)
              else if
                List.exists
                  (fun (_, w) -> (not (Float.is_finite w)) || w < 0.)
                  mix
              then
                Error
                  (Printf.sprintf
                     "workload shift at %g: weights must be finite and >= 0"
                     at)
              else if
                List.fold_left (fun acc (_, w) -> acc +. w) 0. mix <= 0.
              then
                Error
                  (Printf.sprintf
                     "workload shift at %g: mix weights sum to zero" at)
              else go rest)
  in
  go (sort schedule)

let pp_event ppf = function
  | Crash b -> Fmt.pf ppf "crash B%d" (b + 1)
  | Recover b -> Fmt.pf ppf "recover B%d" (b + 1)
  | Slowdown { backend; factor; duration } ->
      Fmt.pf ppf "slowdown B%d x%.2f for %.1fs" (backend + 1) factor duration
  | Partition { backends; duration } ->
      Fmt.pf ppf "partition {%a} for %.1fs"
        Fmt.(list ~sep:(any ",") (fmt "B%d"))
        (List.map (fun b -> b + 1) backends)
        duration
  | ZoneOutage { zone; duration } ->
      Fmt.pf ppf "zone outage z%d for %.1fs" zone duration
  | Workload_shift { mix } ->
      Fmt.pf ppf "workload shift {%a}"
        Fmt.(list ~sep:(any ",") (pair ~sep:(any ":") string (fmt "%.2f")))
        mix

let pp_timed ppf { at; event } = Fmt.pf ppf "%8.2fs %a" at pp_event event

let pp ppf schedule =
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut pp_timed) schedule
