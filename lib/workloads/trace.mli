(** E-learning workload trace (paper Sec. 5, Figs. "active servers", 5, 6).

    The paper replays the backend database accesses of a Web-based
    e-learning tool from October 20, 2009 — only request-rate statistics
    were available (privacy), so this module synthesizes a day with the
    same shape: a deep night trough (3 am – 6 am), a steep morning ramp, a
    midday plateau around 3500–4500 requests / 10 min and an evening
    decline; the class mix shifts over the day with class B dominating at
    night (Fig. 6). *)

val schema : Cdbs_storage.Schema.t
(** Five-table e-learning schema (users, courses, content, forum, quiz). *)

val row_counts : (string * int) list

val rate_per_10min : hour:float -> float
(** The request-rate profile (requests per 10 minutes) at a given hour of
    day [0, 24). *)

val class_mix : hour:float -> (string * float) list
(** Cost shares of the five classes A–E at the given hour; sums to 1.
    Class B dominates between 3 am and 8 am. *)

val specs_at : hour:float -> Spec.class_spec list
(** The class specifications weighted by the hour's mix. *)

val specs_of_mix : mix:(string * float) list -> Spec.class_spec list
(** The class specifications for an {e arbitrary} read mix over A–E
    (weights normalized over the listed read classes; unknown ids are
    ignored, missing ids get weight 0); the update classes keep their
    fixed weights.  [specs_at ~hour] is [specs_of_mix] applied to
    {!class_mix}. *)

val mix_at : hour:float -> (string * float) list
(** The per-window class mix the generator actually uses, as workload
    weights: every class (reads {e and} updates) with its normalized
    share of the total cost, summing to 1.  This is exactly the weight
    vector behind {!specs_at}/{!workload_at}, exposed so tests (and the
    drift detector) can assert the shift a generated window carries
    instead of re-deriving it. *)

val mix_of : mix:(string * float) list -> (string * float) list
(** [mix_at] for an arbitrary read mix: the full normalized weight
    vector (reads scaled into the read share, fixed update weights) that
    {!specs_of_mix} encodes. *)

val requests_for_day :
  rng:Cdbs_util.Rng.t ->
  scale:float ->
  step_minutes:float ->
  Cdbs_cluster.Request.t list
(** A full day of timestamped requests: every [step_minutes] window draws
    [scale * rate] requests with the window's class mix, Poisson-ish
    arrival jitter inside the window.  Arrival times are seconds since
    midnight.  The paper scales the original trace by 40. *)

val journal_for_day :
  rng:Cdbs_util.Rng.t -> scale:float -> Cdbs_core.Journal.t
(** The corresponding query journal (footprint-level entries encoded as
    synthetic SQL), timestamped for {!Cdbs_core.Segmented}. *)

val workload_at : hour:float -> Cdbs_core.Workload.t
(** Classified workload for a single hour's mix, table granularity. *)

val workload_of_mix : mix:(string * float) list -> Cdbs_core.Workload.t
(** Classified workload for an arbitrary read mix (see {!specs_of_mix}),
    table granularity. *)
