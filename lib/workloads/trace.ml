module Schema = Cdbs_storage.Schema
module Journal = Cdbs_core.Journal
module Request = Cdbs_cluster.Request
module Rng = Cdbs_util.Rng

let s w = Schema.T_string w
let i = Schema.T_int

let schema : Schema.t =
  [
    Schema.table "users" ~primary_key:[ "u_id" ]
      [
        ("u_id", i); ("u_name", s 30); ("u_passwd", s 20); ("u_email", s 50);
        ("u_last_login", s 19);
      ];
    Schema.table "courses" ~primary_key:[ "crs_id" ]
      [
        ("crs_id", i); ("crs_title", s 80); ("crs_teacher", i);
        ("crs_term", s 10);
      ];
    Schema.table "content" ~primary_key:[ "ct_id" ]
      [
        ("ct_id", i); ("ct_crs_id", i); ("ct_title", s 80);
        ("ct_body", s 2000); ("ct_kind", s 10);
      ];
    Schema.table "forum" ~primary_key:[ "f_id" ]
      [
        ("f_id", i); ("f_crs_id", i); ("f_author", i); ("f_posted", s 19);
        ("f_body", s 800);
      ];
    Schema.table "quiz" ~primary_key:[ "qz_id" ]
      [
        ("qz_id", i); ("qz_crs_id", i); ("qz_user", i); ("qz_score", i);
        ("qz_answers", s 400); ("qz_submitted", s 19);
      ];
  ]

let row_counts =
  [
    ("users", 40_000); ("courses", 800); ("content", 60_000);
    ("forum", 250_000); ("quiz", 400_000);
  ]

(* Piecewise-linear day profile through the anchor points read off the
   paper's figure (requests per 10 minutes). *)
let anchors =
  [
    (0., 1500.); (3., 300.); (5., 200.); (6., 250.); (8., 1500.);
    (10., 3500.); (12., 3800.); (14., 3500.); (16., 3800.); (18., 4000.);
    (20., 4500.); (22., 3800.); (24., 1500.);
  ]

let rate_per_10min ~hour =
  let h = Float.rem (Float.rem hour 24. +. 24.) 24. in
  let rec interp = function
    | (h0, r0) :: ((h1, r1) :: _ as rest) ->
        if h >= h0 && h <= h1 then
          r0 +. ((r1 -. r0) *. (h -. h0) /. (h1 -. h0))
        else interp rest
    | _ -> 1500.
  in
  interp anchors

(* Class mix over the day (Fig. 6): B dominates 3 am - 8 am; A (content
   reading) follows the teaching day; C (forum) peaks in the evening; D
   (logins) spikes morning and evening; E (catalog) stays low. *)
let class_mix ~hour =
  let h = Float.rem (Float.rem hour 24. +. 24.) 24. in
  let bump center width =
    let d = min (abs_float (h -. center)) (24. -. abs_float (h -. center)) in
    exp (-.(d *. d) /. (2. *. width *. width))
  in
  let a = 0.05 +. (0.5 *. bump 14. 4.) in
  let b = if h >= 3. && h < 8. then 0.65 else 0.06 in
  let c = 0.05 +. (0.35 *. bump 20. 3.) in
  let d = 0.05 +. (0.2 *. bump 9. 1.5) +. (0.15 *. bump 19. 2.) in
  let e = 0.08 in
  let total = a +. b +. c +. d +. e in
  [
    ("A", a /. total); ("B", b /. total); ("C", c /. total);
    ("D", d /. total); ("E", e /. total);
  ]

(* Footprint, per-request work and representative SQL of each class. *)
let class_defs =
  [
    ("A", [ ("content", []); ("courses", []) ], 0.6,
     "SELECT ct_title, ct_body FROM content, courses \
      WHERE ct_crs_id = crs_id AND crs_term = 'F09'");
    ("B", [ ("quiz", []); ("users", []) ], 1.2,
     "SELECT u_name, qz_score FROM quiz, users \
      WHERE qz_user = u_id AND qz_submitted > '2009-10-19'");
    ("C", [ ("forum", []); ("users", []) ], 0.4,
     "SELECT f_body, u_name FROM forum, users \
      WHERE f_author = u_id ORDER BY f_posted DESC LIMIT 50");
    ("D", [ ("users", []) ], 0.05,
     "SELECT u_id, u_passwd FROM users WHERE u_name = 'student'");
    ("E", [ ("courses", []) ], 0.05,
     "SELECT crs_id, crs_title FROM courses WHERE crs_term = 'F09'");
  ]

let update_defs =
  [
    ("U_forum", [ ("forum", []) ], 0.03, 0.3,
     "INSERT INTO forum (f_id, f_crs_id, f_author, f_posted, f_body) \
      VALUES (1, 1, 1, '2009-10-20', 'post')");
    ("U_users", [ ("users", []) ], 0.02, 0.15,
     "UPDATE users SET u_last_login = '2009-10-20' WHERE u_id = 1");
  ]

let read_share = 0.95

let normalize_mix mix =
  let total =
    List.fold_left
      (fun acc (id, _) ->
        acc +. max 0. (Option.value ~default:0. (List.assoc_opt id mix)))
      0.
      (List.map (fun (id, _, _, _) -> (id, ())) class_defs)
  in
  let total = if total > 0. then total else 1. in
  fun id -> max 0. (Option.value ~default:0. (List.assoc_opt id mix)) /. total

let specs_of_mix ~mix =
  let share = normalize_mix mix in
  List.map
    (fun (id, footprint, mb, _) ->
      Spec.read id footprint ~weight:(read_share *. share id) ~request_mb:mb)
    class_defs
  @ List.map
      (fun (id, footprint, w, mb, _) ->
        Spec.update id footprint ~weight:w ~request_mb:mb)
      update_defs

let specs_at ~hour = specs_of_mix ~mix:(class_mix ~hour)

let mix_of ~mix =
  let share = normalize_mix mix in
  List.map (fun (id, _, _, _) -> (id, read_share *. share id)) class_defs
  @ List.map (fun (id, _, w, _, _) -> (id, w)) update_defs

let mix_at ~hour = mix_of ~mix:(class_mix ~hour)

let workload_of_mix ~mix =
  Spec.to_workload ~schema ~rows:row_counts ~granularity:`Table
    (specs_of_mix ~mix)

let workload_at ~hour = workload_of_mix ~mix:(class_mix ~hour)

let requests_for_day ~rng ~scale ~step_minutes =
  let out = ref [] in
  let step_h = step_minutes /. 60. in
  let windows = int_of_float (24. /. step_h) in
  for w = 0 to windows - 1 do
    let hour = float_of_int w *. step_h in
    let rate = rate_per_10min ~hour *. scale in
    let n = int_of_float (rate *. step_minutes /. 10.) in
    let specs = specs_at ~hour in
    let reqs = Spec.requests ~rng ~n specs in
    List.iter
      (fun (r : Request.t) ->
        let jitter = Rng.float rng (step_minutes *. 60.) in
        let arrival = (hour *. 3600.) +. jitter in
        out := { r with Request.arrival } :: !out)
      reqs
  done;
  List.sort
    (fun (a : Request.t) b -> Stdlib.compare a.Request.arrival b.Request.arrival)
    !out

let journal_for_day ~rng ~scale =
  ignore rng;
  let journal = Journal.create () in
  let step_minutes = 30. in
  let windows = int_of_float (24. *. 60. /. step_minutes) in
  for w = 0 to windows - 1 do
    let hour = float_of_int w *. step_minutes /. 60. in
    let at = hour *. 3600. in
    let rate = rate_per_10min ~hour *. scale in
    let window_cost = rate *. step_minutes /. 10. in
    let mix = class_mix ~hour in
    List.iter
      (fun (id, _, mb, sql) ->
        let share = Option.value ~default:0. (List.assoc_opt id mix) in
        let cost = window_cost *. share *. mb in
        if cost > 0. then Journal.record_at journal ~at ~sql ~cost)
      class_defs;
    List.iter
      (fun (_, _, w_up, mb, sql) ->
        Journal.record_at journal ~at ~sql ~cost:(window_cost *. w_up *. mb))
      update_defs
  done;
  journal
