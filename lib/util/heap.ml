type 'a t = {
  mutable times : float array;
  mutable ranks : int array;
  mutable seqs : int array;
  mutable vals : 'a option array;
      (* [None] above [len]; avoids retaining popped payloads *)
  mutable len : int;
  mutable next_seq : int;
}

let create ?(capacity = 256) () =
  if capacity <= 0 then invalid_arg "Heap.create: capacity <= 0";
  {
    times = Array.make capacity 0.;
    ranks = Array.make capacity 0;
    seqs = Array.make capacity 0;
    vals = Array.make capacity None;
    len = 0;
    next_seq = 0;
  }

let length t = t.len
let is_empty t = t.len = 0

(* Strict "entry i orders before entry j". *)
let before t i j =
  let c = Float.compare t.times.(i) t.times.(j) in
  if c <> 0 then c < 0
  else
    let c = Int.compare t.ranks.(i) t.ranks.(j) in
    if c <> 0 then c < 0 else t.seqs.(i) < t.seqs.(j)

let swap t i j =
  let tm = t.times.(i) in
  t.times.(i) <- t.times.(j);
  t.times.(j) <- tm;
  let r = t.ranks.(i) in
  t.ranks.(i) <- t.ranks.(j);
  t.ranks.(j) <- r;
  let s = t.seqs.(i) in
  t.seqs.(i) <- t.seqs.(j);
  t.seqs.(j) <- s;
  let v = t.vals.(i) in
  t.vals.(i) <- t.vals.(j);
  t.vals.(j) <- v

let grow t =
  let cap = Array.length t.times in
  let cap' = 2 * cap in
  let times = Array.make cap' 0. in
  Array.blit t.times 0 times 0 cap;
  t.times <- times;
  let ranks = Array.make cap' 0 in
  Array.blit t.ranks 0 ranks 0 cap;
  t.ranks <- ranks;
  let seqs = Array.make cap' 0 in
  Array.blit t.seqs 0 seqs 0 cap;
  t.seqs <- seqs;
  let vals = Array.make cap' None in
  Array.blit t.vals 0 vals 0 cap;
  t.vals <- vals

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 in
  if l < t.len then begin
    let r = l + 1 in
    let smallest = if r < t.len && before t r l then r else l in
    if before t smallest i then begin
      swap t i smallest;
      sift_down t smallest
    end
  end

let add t ~time ?(rank = 0) v =
  if t.len = Array.length t.times then grow t;
  let i = t.len in
  t.times.(i) <- time;
  t.ranks.(i) <- rank;
  t.seqs.(i) <- t.next_seq;
  t.vals.(i) <- Some v;
  t.next_seq <- t.next_seq + 1;
  t.len <- t.len + 1;
  sift_up t i

let min_time t = if t.len = 0 then None else Some t.times.(0)

let pop_timed t =
  if t.len = 0 then None
  else begin
    let time = t.times.(0) in
    let v = match t.vals.(0) with Some v -> v | None -> assert false in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      swap t 0 t.len;
      t.vals.(t.len) <- None;
      sift_down t 0
    end
    else t.vals.(0) <- None;
    Some (time, v)
  end

let pop t = match pop_timed t with None -> None | Some (_, v) -> Some v

let clear t =
  Array.fill t.vals 0 t.len None;
  t.len <- 0

let rec drain_until t ~time ~f =
  match min_time t with
  | Some mt when mt <= time -> (
      match pop_timed t with
      | Some (at, v) ->
          f at v;
          drain_until t ~time ~f
      | None -> ())
  | _ -> ()
