(** Binary min-heap priority queue keyed on time, for discrete-event
    simulation.

    Entries are ordered by [(time, rank, insertion sequence)]: earliest
    time first; at equal times the lowest rank wins (event categories —
    e.g. faults before internal events before arrivals); at equal time
    and rank, FIFO.  This total order makes a heap-driven event loop
    reproduce exactly what merging independently sorted event lists
    yields, so simulations stay bit-identical under the refactor.

    The implementation is allocation-light: keys live in an unboxed float
    array, ranks and sequence numbers in int arrays, and payloads in a
    parallel array, all grown by doubling — pushing millions of events
    allocates O(log n) arrays total and no per-event boxes beyond the
    payload itself. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** Empty heap.  [capacity] pre-sizes the backing arrays (default 256).
    @raise Invalid_argument when [capacity <= 0]. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val add : 'a t -> time:float -> ?rank:int -> 'a -> unit
(** Push an entry.  [rank] breaks ties among equal times (default 0);
    insertion order breaks ties among equal [(time, rank)]. *)

val min_time : 'a t -> float option
(** Key of the next entry to pop, without popping. *)

val pop : 'a t -> 'a option
(** Remove and return the minimum entry's payload. *)

val pop_timed : 'a t -> (float * 'a) option
(** Remove and return the minimum entry as [(time, payload)]. *)

val clear : 'a t -> unit
(** Drop every entry (keeps the backing arrays). *)

val drain_until : 'a t -> time:float -> f:(float -> 'a -> unit) -> unit
(** Pop every entry with [entry_time <= time], in order, applying [f].
    Entries [f] itself pushes are drained too when they fall inside the
    bound. *)
