(** Minimal work pool over OCaml 5 [Domain] — no external dependencies.

    Used by the island-parallel memetic optimizer: independent tasks are
    striped over at most [Domain.recommended_domain_count] domains.  The
    assignment of tasks to domains is deterministic (round-robin by index)
    and every task writes only its own result slot, so the result of
    {!map} is identical regardless of how many domains actually run —
    parallelism changes wall-clock only, never the answer. *)

val available : unit -> int
(** Number of domains worth spawning on this machine
    ([Domain.recommended_domain_count], at least 1). *)

val map : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~domains f arr] applies [f] to every element, running up to
    [domains] (default {!available}) domains in parallel.  [f] must only
    touch data owned by its own argument; results are returned in input
    order.  With [domains <= 1] (or a short array) everything runs on the
    calling domain.  An exception in any task is re-raised after all
    domains have joined. *)

val mapi : ?domains:int -> (int -> 'a -> 'b) -> 'a array -> 'b array
(** Like {!map} with the element index. *)
