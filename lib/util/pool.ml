let available () = max 1 (Domain.recommended_domain_count ())

let mapi ?domains f arr =
  let n = Array.length arr in
  let d =
    let d = match domains with None -> available () | Some d -> max 1 d in
    min d n
  in
  if n = 0 then [||]
  else if d <= 1 then Array.mapi f arr
  else begin
    let results = Array.make n None in
    (* Domain [j] takes indices j, j+d, j+2d, ... — a fixed stripe, so no
       two domains ever write the same slot. *)
    let worker j () =
      let i = ref j in
      while !i < n do
        results.(!i) <- Some (f !i arr.(!i));
        i := !i + d
      done
    in
    let spawned = Array.init (d - 1) (fun j -> Domain.spawn (worker (j + 1))) in
    let here = try Ok (worker 0 ()) with e -> Error e in
    let joined =
      Array.map (fun dom -> try Ok (Domain.join dom) with e -> Error e) spawned
    in
    (match here with Ok () -> () | Error e -> raise e);
    Array.iter (function Ok () -> () | Error e -> raise e) joined;
    Array.map
      (function Some v -> v | None -> invalid_arg "Pool.map: missing result")
      results
  end

let map ?domains f arr = mapi ?domains (fun _ x -> f x) arr
