#!/bin/sh
# Local CI gate: mirrors .github/workflows/ci.yml.
set -eu
cd "$(dirname "$0")/.."

if git ls-files | grep -E '^_build/|\.install$'; then
  echo "error: build artifacts are tracked in git" >&2
  exit 1
fi

dune build
dune runtest

# Static plan verification: the shipped scenarios must be diagnostic-clean,
# and a deliberately corrupted allocation must be rejected.
dune build @lint
if dune exec bin/cdbs_cli.exe -- check -w quickstart --inject locality >/dev/null 2>&1; then
  echo "error: verifier accepted a corrupted allocation" >&2
  exit 1
fi

# Strict lint: scenarios that ship warning-free must stay that way
# (--strict turns warnings into a non-zero exit).
dune exec bin/cdbs_cli.exe -- check -w trace --strict
dune exec bin/cdbs_cli.exe -- check -w migration --strict

# Zone-annotated scenario: a domain-aware k=1 allocation on a 2-rack
# topology must pass the spread checks (ALC013/ALC014) warning-free.
dune exec bin/cdbs_cli.exe -- check -w zones --strict

# Protocol sanitizer: a monitored chaos run with the full defense stack
# must produce zero trace-protocol violations, and a deliberately
# corrupted event stream must be rejected for every injection kind.
dune exec bin/cdbs_cli.exe -- verify-trace --seed 7 -n 4 -k 1 \
  --duration 300 --rate 10 --json --strict
for inj in breaker-hop rejoin deadline down-serve split-brain \
  overlap-realloc cooldown-trigger rogue-rollback; do
  if dune exec bin/cdbs_cli.exe -- verify-trace --inject "$inj" >/dev/null 2>&1; then
    echo "error: monitor accepted a corrupted trace ($inj)" >&2
    exit 1
  fi
done

# Chaos smoke: a seeded fault schedule against a 1-safe allocation must
# keep availability at 1.0 (the run exits non-zero below the threshold).
dune exec bin/cdbs_cli.exe -- chaos --seed 7 -n 4 -k 1 --max-down 1 \
  --duration 300 --rate 10 --json --min-availability 1.0

# Partition smoke: the correlated stream injects network partitions and
# zone outages against a fault-domain-aware allocation; healed backends
# come back fenced until caught up, the monitor must stay clean and the
# spread placement must hold availability through the incidents.
dune exec bin/cdbs_cli.exe -- chaos --seed 5 -n 6 -k 1 --mtbf 600 \
  --zones 3 --correlated-mtbf 80 --partition-prob 1 --duration 300 \
  --rate 10 --monitor --json --min-availability 0.99

# Overload smoke: with one backend gray-failing (3x slower), the defended
# run must beat the undefended one (the built-in acceptance checks), keep
# p99 under the deadline-scale threshold and shed sparingly (non-zero
# exit on violation).
dune exec bin/cdbs_cli.exe -- overload --seed 11 -n 4 --rate 240 \
  --duration 120 --slow-factor 3 --deadline 1 --json \
  --max-p99-ms 950 --max-shed-rate 0.15

# Day-in-production smoke: the scaled-down 24h macro-benchmark (diurnal
# load, autoscaling, live migration, chaos, defenses) must hold the SLO
# with the protocol sanitizer attached and persist its BENCH_day.json
# report (non-zero exit on an SLO or monitor violation).
dune exec bin/cdbs_cli.exe -- day --smoke --monitor --json --out BENCH_day.json \
  --min-availability 0.99 --max-p99-ms 50 --max-shed-rate 0.01
test -s BENCH_day.json

# Drift smoke: the self-tuning control loop against an adversarial
# workload step-change must beat the static allocation on p99
# (--require-win), stay monitor-clean (unpaired rollbacks are TRC018
# violations) and persist its BENCH_drift.json report.
dune exec bin/cdbs_cli.exe -- autotune --smoke --monitor --require-win \
  --json --out BENCH_drift.json
test -s BENCH_drift.json

# Allocator scale smoke: 100k fragments x 50 backends through the dense
# greedy under a wall-clock gate, diagnostic-clean, with the O(delta)
# incremental-repair gate (a 1% workload delta may move at most 5% of
# the fragments) and a persisted BENCH_alloc.json.
dune exec bin/cdbs_cli.exe -- alloc --smoke --check --max-seconds 30 \
  --max-moved-frac 0.05 --json --out BENCH_alloc.json
test -s BENCH_alloc.json

echo "check: OK"
