#!/bin/sh
# Local CI gate: mirrors .github/workflows/ci.yml.
set -eu
cd "$(dirname "$0")/.."

if git ls-files | grep -E '^_build/|\.install$'; then
  echo "error: build artifacts are tracked in git" >&2
  exit 1
fi

dune build
dune runtest
echo "check: OK"
