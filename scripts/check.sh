#!/bin/sh
# Local CI gate: mirrors .github/workflows/ci.yml.
set -eu
cd "$(dirname "$0")/.."

if git ls-files | grep -E '^_build/|\.install$'; then
  echo "error: build artifacts are tracked in git" >&2
  exit 1
fi

dune build
dune runtest

# Static plan verification: the shipped scenarios must be diagnostic-clean,
# and a deliberately corrupted allocation must be rejected.
dune build @lint
if dune exec bin/cdbs_cli.exe -- check -w quickstart --inject locality >/dev/null 2>&1; then
  echo "error: verifier accepted a corrupted allocation" >&2
  exit 1
fi

echo "check: OK"
