(* Live migration: the controller keeps answering SQL while it rebalances
   its backends onto a new allocation.

   The run submits a skewed history, starts a live reallocation under a
   deliberately small copy budget, and keeps querying and updating while
   the snapshot ships; updates touching the in-flight table go through the
   delta journal and are replayed before that table cuts over. *)

module Controller = Cdbs_cluster.Controller
module Schema = Cdbs_storage.Schema

let schema : Schema.t =
  [
    Schema.table "orders" ~primary_key:[ "id" ]
      [ ("id", Schema.T_int); ("total", Schema.T_int) ];
    Schema.table "items" ~primary_key:[ "id" ]
      [ ("id", Schema.T_int); ("qty", Schema.T_int) ];
  ]

let show_progress c =
  match Controller.migration_progress c with
  | None -> Fmt.pr "  migration: done@."
  | Some p ->
      Fmt.pr
        "  migration: %d/%d tables, %.2f/%.2f MB shipped, %d deltas pending, \
         %d replayed@."
        p.Controller.tables_done p.Controller.tables_total
        p.Controller.mb_shipped p.Controller.mb_total
        p.Controller.delta_pending p.Controller.replayed_statements

let () =
  let c =
    Controller.create ~schema
      ~rows:[ ("orders", 4000); ("items", 4000) ]
      ~backends:3 ~seed:7
  in
  (* Phase 1: an orders-heavy history.  The controller starts fully
     replicated, so this first rebalance merely shrinks [items] down to a
     single replica — no copies needed. *)
  for _ = 1 to 40 do
    ignore (Controller.submit c "SELECT id FROM orders WHERE total > 50")
  done;
  for _ = 1 to 4 do
    ignore (Controller.submit c "SELECT id FROM items WHERE qty > 5")
  done;
  ignore (Controller.reallocate_live c ());
  Fmt.pr "backends before: %a@."
    Fmt.(list ~sep:(any "; ") (list ~sep:comma string))
    (Controller.backend_tables c);

  (* Phase 2: the mix flips to items-heavy, so the next rebalance must
     copy [items] back onto backends that dropped it — this is the live
     part worth watching. *)
  for _ = 1 to 400 do
    ignore (Controller.submit c "SELECT id FROM items WHERE qty > 5")
  done;

  (match
     Controller.begin_reallocate_live c ~bandwidth_mb_per_request:0.0005 ()
   with
  | Ok plan -> Fmt.pr "%a@." Cdbs_migration.Planner.pp plan
  | Error e -> failwith e);

  (* Serve while the rebalance runs: every submit ships a copy budget. *)
  let step = ref 0 in
  while Controller.is_migrating c && !step < 2000 do
    incr step;
    let sql =
      if !step mod 5 = 0 then
        Fmt.str "UPDATE items SET qty = %d WHERE id = %d" (100 + !step)
          (!step mod 100)
      else "SELECT id FROM items WHERE qty > 5"
    in
    (match Controller.submit c sql with
    | Ok _ -> ()
    | Error e -> Fmt.pr "  request failed mid-migration: %s@." e);
    if !step mod 50 = 0 then show_progress c
  done;
  Controller.drive_migration c ();
  show_progress c;

  Fmt.pr "backends after: %a@."
    Fmt.(list ~sep:(any "; ") (list ~sep:comma string))
    (Controller.backend_tables c);
  (* The update stream above must be visible wherever items now lives. *)
  match Controller.submit c "SELECT id FROM items WHERE qty > 5" with
  | Ok (Cdbs_storage.Executor.Rows { rows; _ }) ->
      Fmt.pr "post-migration scan: %d rows@." (List.length rows)
  | Ok _ -> Fmt.pr "post-migration scan: unexpected result@."
  | Error e -> failwith e
