(* K-safety: surviving backend failures without service interruption
   (paper Appendix C).

   A TPC-App-style workload is allocated on 5 backends with k = 0 and
   k = 1; we then fail each backend in turn and check whether every query
   class can still be processed locally by a surviving backend, and what
   the extra availability costs in storage and throughput.

   The second half exercises the full lifecycle live: the most critical
   backend crashes mid-run, the survivors absorb its reads through
   retries, the crashed backend recovers and replays the missed updates
   from the delta journal before taking reads again, and the self-repair
   loop re-replicates onto the survivors to restore effective k.

   Run with: dune exec examples/ksafety_failover.exe *)

open Cdbs_core

let () =
  let workload = Cdbs_workloads.Tpcapp.workload ~granularity:`Table ~eb:300 in
  let backends = Backend.homogeneous 5 in
  let plain = Greedy.allocate workload backends in
  let safe = Ksafety.allocate ~k:1 workload backends in

  Fmt.pr "--- storage and throughput cost of 1-safety ---@.";
  List.iter
    (fun (name, alloc) ->
      Fmt.pr
        "%-8s degree of replication %.2f, scale %.3f, predicted speedup \
         %.2f, min fragment replicas %d@."
        name
        (Replication.degree alloc)
        (Allocation.scale alloc) (Allocation.speedup alloc)
        (Replication.min_replicas alloc))
    [ ("k=0:", plain); ("k=1:", safe) ];

  Fmt.pr "@.--- failing each backend in turn ---@.";
  for b = 0 to 4 do
    Fmt.pr
      "lose B%d: plain allocation still serves all classes: %-5b  1-safe: %b@."
      (b + 1)
      (Ksafety.survives plain ~failed:[ b ])
      (Ksafety.survives safe ~failed:[ b ])
  done;

  (* Double failures exceed k=1 coverage — usually, but not always. *)
  let double_survival alloc =
    let total = ref 0 and ok = ref 0 in
    for b1 = 0 to 4 do
      for b2 = b1 + 1 to 4 do
        incr total;
        if Ksafety.survives alloc ~failed:[ b1; b2 ] then incr ok
      done
    done;
    (!ok, !total)
  in
  let ok, total = double_survival safe in
  Fmt.pr "@.1-safe allocation survives %d of %d double failures@." ok total;

  (* Which classes each backend can serve — the standby replicas are what
     failover falls back to. *)
  Fmt.pr "@.--- class coverage of the 1-safe allocation ---@.";
  Array.iter
    (fun c ->
      let servers =
        List.filter
          (fun b -> Allocation.holds safe b c)
          (List.init 5 (fun b -> b))
      in
      Fmt.pr "%-18s served by %s@." c.Query_class.id
        (String.concat ", "
           (List.map (fun b -> Printf.sprintf "B%d" (b + 1)) servers)))
    (Allocation.classes safe);

  (* --- the lifecycle, live: crash, failover, recover, catch up, repair --- *)
  let module Simulator = Cdbs_cluster.Simulator in
  let module Request = Cdbs_cluster.Request in
  let module Fault = Cdbs_faults.Fault in
  Fmt.pr "@.--- crash, recover, catch up and self-repair (k = 1) ---@.";

  (* The most critical backend: one whose loss drops effective k the
     furthest (greedy over-replication leaves some backends redundant).
     Ties break towards the last such backend — it holds a replica of
     every class, serves the most reads, and so the crash catches
     requests in flight and forces failover retries. *)
  let victim =
    let best = ref 0 and best_k = ref max_int in
    for b = 0 to 4 do
      let ek = Ksafety.effective_k ~failed:[ b ] safe in
      if ek <= !best_k then begin
        best := b;
        best_k := ek
      end
    done;
    !best
  in
  Fmt.pr "effective k is %d; losing B%d leaves effective k %d@."
    (Ksafety.effective_k safe) (victim + 1)
    (Ksafety.effective_k ~failed:[ victim ] safe);

  let duration = 120. in
  let rng = Cdbs_util.Rng.create 42 in
  let requests =
    List.map
      (fun (r : Request.t) ->
        { r with Request.arrival = Cdbs_util.Rng.float rng duration })
      (Cdbs_workloads.Tpcapp.requests ~rng ~granularity:`Table ~eb:300 ~n:60000)
  in
  let faults =
    [ Fault.crash ~at:40. victim; Fault.recover ~at:80. victim ]
  in
  let fo =
    Simulator.run_open_with_faults
      (Simulator.homogeneous_config 5)
      safe requests ~faults
  in
  Fmt.pr
    "B%d down 40 s - 80 s: availability %.4f, %d of %d requests retried \
     (%d attempts), %d aborted@."
    (victim + 1) fo.Simulator.availability fo.Simulator.retried_requests
    fo.Simulator.offered fo.Simulator.retries fo.Simulator.aborted;
  (match fo.Simulator.recoveries with
  | r :: _ ->
      Fmt.pr
        "rejoin: replayed %.2f MB of missed updates from the delta journal, \
         reads re-admitted at %.1f s@."
        r.Simulator.replayed_mb
        (if Float.is_nan r.Simulator.caught_up_at then r.Simulator.recovered_at
         else r.Simulator.caught_up_at)
  | [] -> ());

  (* Self-repair: while the victim is still down, re-replicate its
     obligations onto the survivors so a second crash is survivable. *)
  let gained = Ksafety.repair ~k:1 ~failed:[ victim ] safe in
  let shipped = ref 0. in
  Array.iteri
    (fun b frags ->
      if b <> victim then shipped := !shipped +. Fragment.set_size frags)
    gained;
  Fmt.pr
    "self-repair ships %.1f MB to the survivors; effective k with B%d still \
     down: %d@."
    !shipped (victim + 1)
    (Ksafety.effective_k ~failed:[ victim ] safe)
